//! Two-phase collective I/O (extension — the paper's stated future work,
//! §10: "use DPFS as a low level system to service a high level interface
//! such as MPI-IO").
//!
//! When N processes each access a small, interleaved piece of a file, the
//! independent-I/O path sends N sets of fragmented requests. Collective
//! I/O (ROMIO-style two-phase) fixes this: the accessed byte span is split
//! into N contiguous *file domains*; in the exchange phase participants
//! hand each other the fragments, and in the I/O phase each participant
//! performs ONE large contiguous access against its own domain. DPFS's
//! request combination then turns that into a single request per server.
//!
//! Participants are threads (matching this repo's compute-node model). A
//! [`CollectiveGroup::split`] hands out one [`Collective`] handle per rank;
//! handles synchronize internally with barriers.
//!
//! If any participant fails, every participant of that round returns an
//! error — nobody deadlocks.

use std::sync::{Arc, Barrier, Mutex};

use crate::error::{DpfsError, Result};
use crate::file::FileHandle;

struct WritePost {
    offset: u64,
    data: Arc<Vec<u8>>,
}

struct ReadPost {
    offset: u64,
    len: u64,
}

#[derive(Default)]
struct RoundState {
    write_posts: Vec<Option<WritePost>>,
    read_posts: Vec<Option<ReadPost>>,
    /// Data each participant read for its file domain: `(domain_start, bytes)`.
    domain_data: Vec<Option<(u64, Arc<Vec<u8>>)>>,
    failed: bool,
}

struct GroupInner {
    size: usize,
    barrier: Barrier,
    state: Mutex<RoundState>,
}

/// Factory for collective handles.
pub struct CollectiveGroup;

impl CollectiveGroup {
    /// Create a group of `size` participants; returns one handle per rank.
    pub fn split(size: usize) -> Vec<Collective> {
        assert!(size > 0, "empty collective group");
        let inner = Arc::new(GroupInner {
            size,
            barrier: Barrier::new(size),
            state: Mutex::new(RoundState {
                write_posts: (0..size).map(|_| None).collect(),
                read_posts: (0..size).map(|_| None).collect(),
                domain_data: (0..size).map(|_| None).collect(),
                failed: false,
            }),
        });
        (0..size)
            .map(|rank| Collective {
                rank,
                inner: inner.clone(),
            })
            .collect()
    }
}

/// One participant's handle into a collective group.
pub struct Collective {
    rank: usize,
    inner: Arc<GroupInner>,
}

/// The contiguous file domain of `rank` within `[lo, hi)` split `size` ways.
fn domain(lo: u64, hi: u64, size: usize, rank: usize) -> (u64, u64) {
    let total = hi - lo;
    let per = total.div_ceil(size as u64);
    let start = (lo + per * rank as u64).min(hi);
    let end = (start + per).min(hi);
    (start, end)
}

impl Collective {
    /// This handle's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Collective write: every participant contributes `(offset, data)`;
    /// the group exchanges fragments so each participant issues one large
    /// contiguous write for its file domain. All participants must call
    /// this the same number of times (like `MPI_File_write_all`).
    pub fn write_collective(&self, file: &mut FileHandle, offset: u64, data: &[u8]) -> Result<()> {
        // exchange phase: post our piece
        {
            let mut st = self.inner.state.lock().unwrap();
            st.write_posts[self.rank] = Some(WritePost {
                offset,
                data: Arc::new(data.to_vec()),
            });
        }
        self.inner.barrier.wait();

        // compute the global span and our domain; gather our bytes
        let outcome = (|| -> Result<()> {
            let st = self.inner.state.lock().unwrap();
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for p in st.write_posts.iter().flatten() {
                lo = lo.min(p.offset);
                hi = hi.max(p.offset + p.data.len() as u64);
            }
            if lo >= hi {
                return Ok(()); // everyone wrote zero bytes
            }
            let (dlo, dhi) = domain(lo, hi, self.inner.size, self.rank);
            if dlo >= dhi {
                return Ok(());
            }
            // assemble the domain buffer from everyone's pieces; the domain
            // may have holes, so track coverage and write only covered runs
            let dlen = (dhi - dlo) as usize;
            let mut buf = vec![0u8; dlen];
            let mut covered = vec![false; dlen];
            for p in st.write_posts.iter().flatten() {
                let p_lo = p.offset.max(dlo);
                let p_hi = (p.offset + p.data.len() as u64).min(dhi);
                if p_lo >= p_hi {
                    continue;
                }
                let src = &p.data[(p_lo - p.offset) as usize..(p_hi - p.offset) as usize];
                let dst = (p_lo - dlo) as usize;
                buf[dst..dst + src.len()].copy_from_slice(src);
                for c in &mut covered[dst..dst + src.len()] {
                    *c = true;
                }
            }
            drop(st);
            // write each covered run contiguously
            let mut i = 0usize;
            while i < dlen {
                if !covered[i] {
                    i += 1;
                    continue;
                }
                let start = i;
                while i < dlen && covered[i] {
                    i += 1;
                }
                file.write_bytes(dlo + start as u64, &buf[start..i])?;
            }
            Ok(())
        })();

        if outcome.is_err() {
            self.inner.state.lock().unwrap().failed = true;
        }
        self.inner.barrier.wait();
        // cleanup + failure propagation
        let failed = {
            let mut st = self.inner.state.lock().unwrap();
            st.write_posts[self.rank] = None;
            st.failed
        };
        self.inner.barrier.wait();
        if self.rank == 0 {
            self.inner.state.lock().unwrap().failed = false;
        }
        outcome?;
        if failed {
            return Err(DpfsError::InvalidArgument(
                "a collective-write participant failed".into(),
            ));
        }
        Ok(())
    }

    /// Collective read: every participant requests `(offset, len)`; each
    /// participant reads one contiguous file domain and the group exchanges
    /// fragments in memory (like `MPI_File_read_all`).
    pub fn read_collective(&self, file: &mut FileHandle, offset: u64, len: u64) -> Result<Vec<u8>> {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.read_posts[self.rank] = Some(ReadPost { offset, len });
        }
        self.inner.barrier.wait();

        // I/O phase: read our domain
        let (lo, hi) = {
            let st = self.inner.state.lock().unwrap();
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for p in st.read_posts.iter().flatten() {
                if p.len > 0 {
                    lo = lo.min(p.offset);
                    hi = hi.max(p.offset + p.len);
                }
            }
            (lo, hi)
        };
        let io_result: Result<()> = if lo < hi {
            let (dlo, dhi) = domain(lo, hi, self.inner.size, self.rank);
            if dlo < dhi {
                match file.read_bytes(dlo, dhi - dlo) {
                    Ok(bytes) => {
                        self.inner.state.lock().unwrap().domain_data[self.rank] =
                            Some((dlo, Arc::new(bytes)));
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            } else {
                Ok(())
            }
        } else {
            Ok(())
        };
        if io_result.is_err() {
            self.inner.state.lock().unwrap().failed = true;
        }
        self.inner.barrier.wait();

        // exchange phase: extract our bytes from everyone's domains
        let (mut out, failed) = {
            let st = self.inner.state.lock().unwrap();
            let mut out = vec![0u8; len as usize];
            if !st.failed {
                for (dlo, bytes) in st.domain_data.iter().flatten() {
                    let d_hi = dlo + bytes.len() as u64;
                    let p_lo = offset.max(*dlo);
                    let p_hi = (offset + len).min(d_hi);
                    if p_lo >= p_hi {
                        continue;
                    }
                    let src = &bytes[(p_lo - dlo) as usize..(p_hi - dlo) as usize];
                    let dst = (p_lo - offset) as usize;
                    out[dst..dst + src.len()].copy_from_slice(src);
                }
            }
            (out, st.failed)
        };
        self.inner.barrier.wait();
        // cleanup
        {
            let mut st = self.inner.state.lock().unwrap();
            st.read_posts[self.rank] = None;
            st.domain_data[self.rank] = None;
        }
        self.inner.barrier.wait();
        if self.rank == 0 {
            self.inner.state.lock().unwrap().failed = false;
        }
        io_result?;
        if failed {
            out.clear();
            return Err(DpfsError::InvalidArgument(
                "a collective-read participant failed".into(),
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_partition_span() {
        for (lo, hi, size) in [(0u64, 100u64, 4usize), (10, 1000, 7), (0, 5, 8), (3, 4, 2)] {
            let mut covered = 0u64;
            let mut prev_end = lo;
            for rank in 0..size {
                let (s, e) = domain(lo, hi, size, rank);
                assert!(s >= prev_end || s == e, "domains must not overlap");
                assert!(s <= e);
                covered += e - s;
                if s < e {
                    assert_eq!(s, prev_end, "domains must be contiguous");
                    prev_end = e;
                }
            }
            assert_eq!(covered, hi - lo, "span {lo}..{hi} over {size}");
            assert_eq!(prev_end, hi);
        }
    }

    #[test]
    fn single_rank_domain_is_everything() {
        assert_eq!(domain(5, 50, 1, 0), (5, 50));
    }
}
