//! N-dimensional shapes and regions.
//!
//! The multidimensional and array file levels operate on element
//! coordinates of an N-d array stored row-major (C order, last dimension
//! fastest). This module is the coordinate math they share: shapes,
//! rectangular regions, linearization, intersection, and iteration over the
//! maximal contiguous runs of a region.

use crate::error::{DpfsError, Result};

/// Extents of an N-d array (element counts per dimension).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<u64>);

impl Shape {
    /// Construct, rejecting empty shapes and zero extents.
    pub fn new(dims: Vec<u64>) -> Result<Shape> {
        if dims.is_empty() {
            return Err(DpfsError::InvalidArgument("empty shape".into()));
        }
        if dims.contains(&0) {
            return Err(DpfsError::InvalidArgument(format!(
                "zero extent in shape {dims:?}"
            )));
        }
        Ok(Shape(dims))
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// Total element count.
    pub fn volume(&self) -> u64 {
        self.0.iter().product()
    }

    /// Row-major strides (elements): stride of dim `i` is the product of
    /// extents of dims `i+1..`.
    pub fn strides(&self) -> Vec<u64> {
        let n = self.0.len();
        let mut s = vec![1u64; n];
        for i in (0..n - 1).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Linear (row-major) index of a coordinate.
    pub fn linearize(&self, coord: &[u64]) -> u64 {
        debug_assert_eq!(coord.len(), self.0.len());
        self.strides().iter().zip(coord).map(|(s, c)| s * c).sum()
    }

    /// Coordinate of a linear index.
    pub fn delinearize(&self, mut idx: u64) -> Vec<u64> {
        let strides = self.strides();
        let mut coord = vec![0u64; self.0.len()];
        for (i, s) in strides.iter().enumerate() {
            coord[i] = idx / s;
            idx %= s;
        }
        coord
    }

    /// The whole-array region.
    pub fn full_region(&self) -> Region {
        Region {
            origin: vec![0; self.0.len()],
            extent: self.0.clone(),
        }
    }

    /// Number of grid cells per dimension when tiling with `tile` (ceil
    /// division).
    pub fn grid_for(&self, tile: &Shape) -> Result<Shape> {
        if tile.ndims() != self.ndims() {
            return Err(DpfsError::InvalidArgument(format!(
                "tile rank {} != array rank {}",
                tile.ndims(),
                self.ndims()
            )));
        }
        Shape::new(
            self.0
                .iter()
                .zip(&tile.0)
                .map(|(&d, &t)| d.div_ceil(t))
                .collect(),
        )
    }
}

/// An axis-aligned rectangular region: `origin[i] .. origin[i]+extent[i]`
/// per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    /// Lowest coordinate included, per dimension.
    pub origin: Vec<u64>,
    /// Element count per dimension (all nonzero).
    pub extent: Vec<u64>,
}

impl Region {
    /// Construct, validating rank agreement and nonzero extents.
    pub fn new(origin: Vec<u64>, extent: Vec<u64>) -> Result<Region> {
        if origin.len() != extent.len() {
            return Err(DpfsError::InvalidArgument(format!(
                "origin rank {} != extent rank {}",
                origin.len(),
                extent.len()
            )));
        }
        if origin.is_empty() {
            return Err(DpfsError::InvalidArgument("empty region".into()));
        }
        if extent.contains(&0) {
            return Err(DpfsError::InvalidArgument(format!(
                "zero extent in region {extent:?}"
            )));
        }
        Ok(Region { origin, extent })
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.origin.len()
    }

    /// Total element count.
    pub fn volume(&self) -> u64 {
        self.extent.iter().product()
    }

    /// Exclusive upper corner.
    pub fn end(&self) -> Vec<u64> {
        self.origin
            .iter()
            .zip(&self.extent)
            .map(|(o, e)| o + e)
            .collect()
    }

    /// True if `self` lies entirely inside an array of `shape`.
    pub fn fits_in(&self, shape: &Shape) -> bool {
        self.ndims() == shape.ndims()
            && self.end().iter().zip(&shape.0).all(|(end, dim)| end <= dim)
    }

    /// Intersection with another region, or `None` if disjoint.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        debug_assert_eq!(self.ndims(), other.ndims());
        let mut origin = Vec::with_capacity(self.ndims());
        let mut extent = Vec::with_capacity(self.ndims());
        for i in 0..self.ndims() {
            let lo = self.origin[i].max(other.origin[i]);
            let hi = (self.origin[i] + self.extent[i]).min(other.origin[i] + other.extent[i]);
            if lo >= hi {
                return None;
            }
            origin.push(lo);
            extent.push(hi - lo);
        }
        Some(Region { origin, extent })
    }

    /// True if `coord` lies inside the region.
    pub fn contains(&self, coord: &[u64]) -> bool {
        coord.len() == self.ndims()
            && (0..self.ndims())
                .all(|i| coord[i] >= self.origin[i] && coord[i] < self.origin[i] + self.extent[i])
    }

    /// Iterate the region's maximal contiguous row-major runs *within an
    /// enclosing array of `shape`*: yields `(start_linear_index, run_len)`
    /// pairs in increasing order. A run is one row segment (innermost
    /// dimension), merged with neighbours when the region spans whole
    /// trailing dimensions.
    pub fn contiguous_runs<'a>(&'a self, shape: &'a Shape) -> ContiguousRuns<'a> {
        // Find how many trailing dimensions are "full": region covers the
        // whole dimension. Those fuse into longer runs.
        let n = self.ndims();
        let mut fused = 1u64; // elements per run
        let mut outer_dims = n; // dims we still iterate over
        for i in (0..n).rev() {
            if self.origin[i] == 0 && self.extent[i] == shape.0[i] {
                fused *= shape.0[i];
                outer_dims = i;
            } else {
                // the innermost non-full dim contributes its extent once
                fused *= self.extent[i];
                outer_dims = i;
                break;
            }
        }
        ContiguousRuns {
            region: self,
            shape,
            outer_dims,
            run_len: fused,
            counter: vec![0; outer_dims],
            done: false,
        }
    }
}

/// Iterator over `(start_index, len)` runs; see
/// [`Region::contiguous_runs`].
pub struct ContiguousRuns<'a> {
    region: &'a Region,
    shape: &'a Shape,
    outer_dims: usize,
    run_len: u64,
    counter: Vec<u64>,
    done: bool,
}

impl Iterator for ContiguousRuns<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.done {
            return None;
        }
        // Current coordinate = region origin + counter in the outer dims,
        // origin in the rest.
        let mut coord = self.region.origin.clone();
        for (c, step) in coord.iter_mut().zip(&self.counter).take(self.outer_dims) {
            *c += *step;
        }
        let start = self.shape.linearize(&coord);
        let item = (start, self.run_len);
        // Advance odometer over outer dims (row-major: last dim fastest).
        let mut i = self.outer_dims;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.counter[i] += 1;
            if self.counter[i] < self.region.extent[i] {
                break;
            }
            self.counter[i] = 0;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[u64]) -> Shape {
        Shape::new(dims.to_vec()).unwrap()
    }

    fn region(origin: &[u64], extent: &[u64]) -> Region {
        Region::new(origin.to_vec(), extent.to_vec()).unwrap()
    }

    #[test]
    fn shape_validation() {
        assert!(Shape::new(vec![]).is_err());
        assert!(Shape::new(vec![4, 0]).is_err());
        assert!(Shape::new(vec![8, 8]).is_ok());
    }

    #[test]
    fn strides_and_linearize() {
        let s = shape(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
        assert_eq!(s.linearize(&[0, 0, 0]), 0);
        assert_eq!(s.linearize(&[1, 0, 0]), 6);
        assert_eq!(s.linearize(&[3, 2, 1]), 23);
        assert_eq!(s.volume(), 24);
    }

    #[test]
    fn delinearize_inverts_linearize() {
        let s = shape(&[5, 7, 3]);
        for idx in [0u64, 1, 20, 104, 33] {
            assert_eq!(s.linearize(&s.delinearize(idx)), idx);
        }
    }

    #[test]
    fn region_validation() {
        assert!(Region::new(vec![0], vec![0]).is_err());
        assert!(Region::new(vec![0, 0], vec![1]).is_err());
        assert!(Region::new(vec![], vec![]).is_err());
    }

    #[test]
    fn fits_in() {
        let s = shape(&[8, 8]);
        assert!(region(&[0, 0], &[8, 8]).fits_in(&s));
        assert!(region(&[6, 6], &[2, 2]).fits_in(&s));
        assert!(!region(&[6, 6], &[3, 2]).fits_in(&s));
        assert!(!region(&[0], &[8]).fits_in(&s));
    }

    #[test]
    fn intersect_basic() {
        let a = region(&[0, 0], &[4, 4]);
        let b = region(&[2, 2], &[4, 4]);
        assert_eq!(a.intersect(&b), Some(region(&[2, 2], &[2, 2])));
        let c = region(&[4, 4], &[2, 2]);
        assert_eq!(a.intersect(&c), None);
        // touching edges are disjoint
        let d = region(&[0, 4], &[4, 4]);
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn contains() {
        let r = region(&[2, 3], &[2, 2]);
        assert!(r.contains(&[2, 3]));
        assert!(r.contains(&[3, 4]));
        assert!(!r.contains(&[4, 3]));
        assert!(!r.contains(&[1, 3]));
    }

    #[test]
    fn runs_full_rows() {
        // rows 2..4 of an 8x8: one run per row of 8, or fused? region covers
        // the whole trailing dim -> fuse: (BLOCK, *) access is 1 run
        let s = shape(&[8, 8]);
        let r = region(&[2, 0], &[2, 8]);
        let runs: Vec<_> = r.contiguous_runs(&s).collect();
        assert_eq!(runs, vec![(16, 16)]);
    }

    #[test]
    fn runs_columns() {
        // columns 0..2 of an 8x8 -> (*, BLOCK): 8 runs of 2
        let s = shape(&[8, 8]);
        let r = region(&[0, 0], &[8, 2]);
        let runs: Vec<_> = r.contiguous_runs(&s).collect();
        assert_eq!(runs.len(), 8);
        assert_eq!(runs[0], (0, 2));
        assert_eq!(runs[1], (8, 2));
        assert_eq!(runs[7], (56, 2));
    }

    #[test]
    fn runs_interior_block() {
        let s = shape(&[8, 8]);
        let r = region(&[1, 2], &[2, 3]);
        let runs: Vec<_> = r.contiguous_runs(&s).collect();
        assert_eq!(runs, vec![(10, 3), (18, 3)]);
    }

    #[test]
    fn runs_whole_array_is_one_run() {
        let s = shape(&[4, 4, 4]);
        let runs: Vec<_> = s.full_region().contiguous_runs(&s).collect();
        assert_eq!(runs, vec![(0, 64)]);
    }

    #[test]
    fn runs_3d_partial() {
        let s = shape(&[2, 3, 4]);
        // region: both planes, row 1 only, cols 1..3 -> 2 runs of 2
        let r = region(&[0, 1, 1], &[2, 1, 2]);
        let runs: Vec<_> = r.contiguous_runs(&s).collect();
        assert_eq!(runs, vec![(5, 2), (17, 2)]);
    }

    #[test]
    fn runs_cover_region_volume() {
        let s = shape(&[6, 5, 4]);
        let r = region(&[1, 0, 2], &[3, 5, 2]);
        let total: u64 = r.contiguous_runs(&s).map(|(_, l)| l).sum();
        assert_eq!(total, r.volume());
    }

    #[test]
    fn grid_for_ceil_division() {
        let s = shape(&[8, 8]);
        assert_eq!(s.grid_for(&shape(&[2, 2])).unwrap(), shape(&[4, 4]));
        assert_eq!(s.grid_for(&shape(&[3, 8])).unwrap(), shape(&[3, 1]));
        assert!(s.grid_for(&shape(&[2])).is_err());
    }
}
