//! File levels, HPF distribution patterns, and the DPFS hint structure.
//!
//! "The hint structure provided by DPFS API is the tool to convey user's
//! knowledge to the low level systems. The most important information in the
//! hint structure is the file level when the file is created." (paper §6)

use crate::error::{DpfsError, Result};
use crate::geometry::Shape;

/// The three DPFS file levels (paper §3). Each level names the striping
/// method used when the file is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileLevel {
    /// Linear striping: the file is a stream of bytes cut into fixed-size
    /// linear bricks (§3.1). Most general; poor for columnar access.
    Linear,
    /// Multidimensional striping: each brick is an N-d tile of the array
    /// (§3.2). Solves the linear level's (*, BLOCK) problem.
    Multidim,
    /// Array striping: each brick is one coarse HPF-style chunk, stored
    /// whole (§3.3). Best for checkpoint-style whole-chunk access.
    Array,
}

impl FileLevel {
    /// Catalog string for this level.
    pub fn as_str(self) -> &'static str {
        match self {
            FileLevel::Linear => "linear",
            FileLevel::Multidim => "multidim",
            FileLevel::Array => "array",
        }
    }

    /// Parse the catalog string.
    pub fn parse(s: &str) -> Result<FileLevel> {
        match s {
            "linear" => Ok(FileLevel::Linear),
            "multidim" => Ok(FileLevel::Multidim),
            "array" => Ok(FileLevel::Array),
            other => Err(DpfsError::InvalidArgument(format!(
                "unknown file level {other:?}"
            ))),
        }
    }
}

/// One dimension of an HPF data distribution (paper §3.3 uses BLOCK and
/// `*`; CYCLIC and BLOCK-CYCLIC complete the HPF set as an extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// `BLOCK`: the dimension is split into `procs` contiguous blocks.
    Block(u64),
    /// `CYCLIC`: elements deal round-robin to `procs` processors.
    Cyclic(u64),
    /// `CYCLIC(b)`: blocks of `b` elements deal round-robin to `procs`.
    BlockCyclic { procs: u64, block: u64 },
    /// `*`: the dimension is not distributed.
    Star,
}

impl Dist {
    /// Number of processors along this dimension (1 for `*`).
    pub fn procs(self) -> u64 {
        match self {
            Dist::Block(p) | Dist::Cyclic(p) => p,
            Dist::BlockCyclic { procs, .. } => procs,
            Dist::Star => 1,
        }
    }
}

/// An HPF distribution pattern such as `(BLOCK, *)`, `(*, BLOCK)` or
/// `(BLOCK, BLOCK)`, one [`Dist`] per array dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HpfPattern(pub Vec<Dist>);

impl HpfPattern {
    /// `(BLOCK, *, ...)` over `ndims` dims with `procs` processors on dim 0.
    pub fn block_star(procs: u64, ndims: usize) -> HpfPattern {
        let mut d = vec![Dist::Star; ndims];
        d[0] = Dist::Block(procs);
        HpfPattern(d)
    }

    /// `(*, ..., BLOCK)` with `procs` processors on the last dim.
    pub fn star_block(procs: u64, ndims: usize) -> HpfPattern {
        let mut d = vec![Dist::Star; ndims];
        d[ndims - 1] = Dist::Block(procs);
        HpfPattern(d)
    }

    /// `(BLOCK, BLOCK)` over a 2-d processor grid `p0 x p1`.
    pub fn block_block(p0: u64, p1: u64) -> HpfPattern {
        HpfPattern(vec![Dist::Block(p0), Dist::Block(p1)])
    }

    /// `(CYCLIC, *, ...)` with `procs` processors on dim 0.
    pub fn cyclic_star(procs: u64, ndims: usize) -> HpfPattern {
        let mut d = vec![Dist::Star; ndims];
        d[0] = Dist::Cyclic(procs);
        HpfPattern(d)
    }

    /// `(CYCLIC(b), *, ...)` with `procs` processors on dim 0.
    pub fn block_cyclic_star(procs: u64, block: u64, ndims: usize) -> HpfPattern {
        let mut d = vec![Dist::Star; ndims];
        d[0] = Dist::BlockCyclic { procs, block };
        HpfPattern(d)
    }

    /// Number of array dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// The processor-grid shape: distributed dims contribute their
    /// processor count, `*` contributes 1.
    pub fn grid(&self) -> Shape {
        Shape(self.0.iter().map(|d| d.procs()).collect())
    }

    /// Total number of chunks (= processors = array bricks).
    pub fn num_chunks(&self) -> u64 {
        self.grid().volume()
    }

    /// Render in HPF notation, e.g. `BLOCK,*` or `CYCLIC(4),*`.
    pub fn to_pattern_string(&self) -> String {
        self.0
            .iter()
            .map(|d| match d {
                Dist::Block(_) => "BLOCK".to_string(),
                Dist::Cyclic(_) => "CYCLIC".to_string(),
                Dist::BlockCyclic { block, .. } => format!("CYCLIC({block})"),
                Dist::Star => "*".to_string(),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Reconstruct from the catalog's `(pattern, grid)` pair.
    pub fn from_catalog(pattern: &str, grid: &[i64]) -> Result<HpfPattern> {
        let parts: Vec<&str> = pattern.split(',').collect();
        if parts.len() != grid.len() {
            return Err(DpfsError::InvalidArgument(format!(
                "pattern {pattern:?} rank != grid rank {}",
                grid.len()
            )));
        }
        let dists = parts
            .iter()
            .zip(grid)
            .map(|(p, &g)| {
                if *p == "BLOCK" {
                    Ok(Dist::Block(g as u64))
                } else if *p == "*" {
                    Ok(Dist::Star)
                } else if *p == "CYCLIC" {
                    Ok(Dist::Cyclic(g as u64))
                } else if let Some(rest) = p.strip_prefix("CYCLIC(") {
                    let b: u64 = rest
                        .strip_suffix(')')
                        .and_then(|x| x.parse().ok())
                        .ok_or_else(|| {
                            DpfsError::InvalidArgument(format!("bad distribution {p:?}"))
                        })?;
                    Ok(Dist::BlockCyclic {
                        procs: g as u64,
                        block: b,
                    })
                } else {
                    Err(DpfsError::InvalidArgument(format!(
                        "bad distribution {p:?}"
                    )))
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(HpfPattern(dists))
    }
}

/// Per-file redundancy policy (extension; ROADMAP item 2). Selected at
/// create time, persisted in the catalog attribute row, and honored by
/// every client that opens the file: writes fan out to the redundant
/// subfiles, and a read aimed at a dead server is reconstructed from the
/// survivors instead of failing or zero-filling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RedundancyPolicy {
    /// No redundancy: one subfile per data server (the original layout).
    #[default]
    None,
    /// `k` total copies of every subfile (`k >= 2`): copy `i` of server
    /// `s`'s subfile lives on server `(s + i) mod S` under a derived
    /// subfile name. Survives any `k - 1` server losses.
    Replica(usize),
    /// RAID-4-style XOR parity: data stripes over the first `S - 1`
    /// servers (name order) and the last server holds one parity subfile
    /// whose every byte is the XOR of the data subfiles at that offset.
    /// Survives any single server loss at `1/(S-1)` space overhead.
    XorParity,
}

impl RedundancyPolicy {
    /// Catalog/wire string: `""`, `"replica:K"`, or `"xor"`.
    pub fn as_str(self) -> String {
        match self {
            RedundancyPolicy::None => String::new(),
            RedundancyPolicy::Replica(k) => format!("replica:{k}"),
            RedundancyPolicy::XorParity => "xor".to_string(),
        }
    }

    /// Parse the catalog string (empty = [`RedundancyPolicy::None`]).
    pub fn parse(s: &str) -> Result<RedundancyPolicy> {
        if s.is_empty() {
            return Ok(RedundancyPolicy::None);
        }
        if s == "xor" {
            return Ok(RedundancyPolicy::XorParity);
        }
        if let Some(k) = s.strip_prefix("replica:") {
            let k: usize = k
                .parse()
                .map_err(|_| DpfsError::InvalidArgument(format!("bad replica count in {s:?}")))?;
            if k < 2 {
                return Err(DpfsError::InvalidArgument(format!(
                    "replica policy needs k >= 2, got {k}"
                )));
            }
            return Ok(RedundancyPolicy::Replica(k));
        }
        Err(DpfsError::InvalidArgument(format!(
            "unknown redundancy policy {s:?}"
        )))
    }
}

/// Placement (striping) algorithm choice (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Classic round-robin brick assignment.
    #[default]
    RoundRobin,
    /// The paper's greedy algorithm: weight servers by normalized
    /// performance numbers so fast storage takes proportionally more bricks.
    Greedy,
}

/// Striping geometry, one variant per file level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Striping {
    /// Linear level: brick size in bytes, plus the declared file size in
    /// bytes (bricks are assigned at creation; the file may grow later).
    Linear { brick_bytes: u64, file_bytes: u64 },
    /// Multidim level: global array shape, brick tile shape, element size
    /// in bytes.
    Multidim {
        array: Shape,
        brick: Shape,
        elem_bytes: u64,
    },
    /// Array level: global array shape, HPF pattern, element size in bytes.
    Array {
        array: Shape,
        pattern: HpfPattern,
        elem_bytes: u64,
    },
}

impl Striping {
    /// The file level this striping corresponds to.
    pub fn level(&self) -> FileLevel {
        match self {
            Striping::Linear { .. } => FileLevel::Linear,
            Striping::Multidim { .. } => FileLevel::Multidim,
            Striping::Array { .. } => FileLevel::Array,
        }
    }
}

/// The hint structure passed to `DPFS_Open` at file creation (paper §6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hint {
    /// Striping method and geometry — "the most important information".
    pub striping: Striping,
    /// Suggested number of I/O nodes; `None` = use every registered server.
    pub io_nodes: Option<usize>,
    /// Striping algorithm.
    pub placement: Placement,
    /// Owner recorded in the catalog.
    pub owner: String,
    /// Permission bits recorded in the catalog.
    pub permission: i64,
    /// Redundancy policy applied to every subfile of the file.
    pub redundancy: RedundancyPolicy,
}

impl Hint {
    /// A linear-level hint with the given brick size and declared size.
    pub fn linear(brick_bytes: u64, file_bytes: u64) -> Hint {
        Hint {
            striping: Striping::Linear {
                brick_bytes,
                file_bytes,
            },
            io_nodes: None,
            placement: Placement::RoundRobin,
            owner: "dpfs".into(),
            permission: 0o644,
            redundancy: RedundancyPolicy::None,
        }
    }

    /// A multidim-level hint for `array` tiled by `brick` with `elem_bytes`
    /// per element.
    pub fn multidim(array: Shape, brick: Shape, elem_bytes: u64) -> Hint {
        Hint {
            striping: Striping::Multidim {
                array,
                brick,
                elem_bytes,
            },
            io_nodes: None,
            placement: Placement::RoundRobin,
            owner: "dpfs".into(),
            permission: 0o644,
            redundancy: RedundancyPolicy::None,
        }
    }

    /// An array-level hint for `array` distributed by `pattern`.
    pub fn array(array: Shape, pattern: HpfPattern, elem_bytes: u64) -> Hint {
        Hint {
            striping: Striping::Array {
                array,
                pattern,
                elem_bytes,
            },
            io_nodes: None,
            placement: Placement::RoundRobin,
            owner: "dpfs".into(),
            permission: 0o644,
            redundancy: RedundancyPolicy::None,
        }
    }

    /// Set the suggested number of I/O nodes.
    pub fn with_io_nodes(mut self, n: usize) -> Hint {
        self.io_nodes = Some(n);
        self
    }

    /// Set the placement algorithm.
    pub fn with_placement(mut self, p: Placement) -> Hint {
        self.placement = p;
        self
    }

    /// Set the owner.
    pub fn with_owner(mut self, owner: &str) -> Hint {
        self.owner = owner.to_string();
        self
    }

    /// Set the redundancy policy.
    pub fn with_redundancy(mut self, r: RedundancyPolicy) -> Hint {
        self.redundancy = r;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_round_trip() {
        for l in [FileLevel::Linear, FileLevel::Multidim, FileLevel::Array] {
            assert_eq!(FileLevel::parse(l.as_str()).unwrap(), l);
        }
        assert!(FileLevel::parse("nope").is_err());
    }

    #[test]
    fn pattern_grids() {
        assert_eq!(HpfPattern::block_star(4, 2).grid().0, vec![4, 1]);
        assert_eq!(HpfPattern::star_block(4, 2).grid().0, vec![1, 4]);
        assert_eq!(HpfPattern::block_block(2, 2).grid().0, vec![2, 2]);
        assert_eq!(HpfPattern::block_block(2, 2).num_chunks(), 4);
    }

    #[test]
    fn pattern_strings() {
        assert_eq!(HpfPattern::block_star(4, 2).to_pattern_string(), "BLOCK,*");
        assert_eq!(HpfPattern::star_block(8, 2).to_pattern_string(), "*,BLOCK");
        assert_eq!(
            HpfPattern::block_block(2, 4).to_pattern_string(),
            "BLOCK,BLOCK"
        );
    }

    #[test]
    fn pattern_catalog_round_trip() {
        let p = HpfPattern::block_block(2, 4);
        let s = p.to_pattern_string();
        let grid: Vec<i64> = p.grid().0.iter().map(|&x| x as i64).collect();
        let back = HpfPattern::from_catalog(&s, &grid).unwrap();
        assert_eq!(back, p);

        let p = HpfPattern::star_block(8, 3);
        let back = HpfPattern::from_catalog(&p.to_pattern_string(), &[1, 1, 8]).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn from_catalog_rejects_bad_input() {
        assert!(HpfPattern::from_catalog("BLOCK,*", &[4]).is_err());
        assert!(HpfPattern::from_catalog("WEIRD", &[4]).is_err());
        assert!(HpfPattern::from_catalog("CYCLIC(x)", &[4]).is_err());
    }

    #[test]
    fn cyclic_patterns_round_trip_catalog() {
        for p in [
            HpfPattern::cyclic_star(4, 2),
            HpfPattern::block_cyclic_star(3, 16, 2),
            HpfPattern(vec![
                Dist::Cyclic(2),
                Dist::BlockCyclic { procs: 2, block: 8 },
            ]),
        ] {
            let s = p.to_pattern_string();
            let grid: Vec<i64> = p.grid().0.iter().map(|&x| x as i64).collect();
            assert_eq!(HpfPattern::from_catalog(&s, &grid).unwrap(), p, "{s}");
        }
        assert_eq!(
            HpfPattern::cyclic_star(4, 2).to_pattern_string(),
            "CYCLIC,*"
        );
        assert_eq!(
            HpfPattern::block_cyclic_star(3, 16, 2).to_pattern_string(),
            "CYCLIC(16),*"
        );
    }

    #[test]
    fn hint_builders() {
        let h = Hint::linear(65536, 1 << 20)
            .with_io_nodes(4)
            .with_placement(Placement::Greedy)
            .with_owner("xhshen");
        assert_eq!(h.io_nodes, Some(4));
        assert_eq!(h.placement, Placement::Greedy);
        assert_eq!(h.owner, "xhshen");
        assert_eq!(h.striping.level(), FileLevel::Linear);
    }
}
