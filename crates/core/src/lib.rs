//! `dpfs-core` — the DPFS client library: the paper's primary contribution.
//!
//! DPFS (Shen & Choudhary, ICPP 2001) is a Distributed Parallel File
//! System: it aggregates unused distributed storage into a striped parallel
//! file system. This crate implements the client side:
//!
//! - **Three file levels** ([`hints::FileLevel`], [`layout`]): linear
//!   striping, the novel *multidimensional* striping (N-d tile bricks), and
//!   *array* striping (whole HPF chunks) — paper §3.
//! - **Striping algorithms** ([`placement`]): round-robin and the
//!   heterogeneity-aware greedy algorithm (Figure 8/9) — paper §4.1.
//! - **Request combination** ([`plan`]): coalescing a client's bricks per
//!   server into single requests with a staggered schedule — paper §4.2.
//! - **Derived datatypes** ([`datatype`]): MPI-IO-style non-contiguous
//!   access — paper §6.
//! - **The DPFS API** ([`fs::Dpfs`], [`file::FileHandle`], and the
//!   paper-style wrappers in [`api`]).
//!
//! Metadata lives in the SQL database provided by `dpfs-meta` (paper §5);
//! data moves over the TCP protocol of `dpfs-proto` to `dpfs-server` I/O
//! nodes (paper §2). Every operation is traced end to end ([`trace`]):
//! client phase spans and server-side events share a per-operation trace
//! ID carried in v3 frames, and per-kind latency histograms accumulate in
//! [`TransportStats`].

pub mod api;
pub mod cache;
pub mod collective;
pub mod conn;
pub mod datatype;
pub mod error;
pub mod file;
pub mod fs;
pub mod fsck;
pub mod geometry;
pub mod hints;
pub mod layout;
pub mod meta_cache;
pub mod placement;
pub mod plan;
pub mod remote_meta;
pub mod retry;
pub mod trace;
pub mod transport;

pub use cache::BrickCache;
pub use collective::{Collective, CollectiveGroup};
pub use conn::{ConnPool, Resolver};
pub use datatype::Datatype;
pub use error::{DpfsError, Result, SubfileOutcome};
pub use file::{mirror_subfile, parity_subfile, ClientOptions, ClientStats, FileHandle};
pub use fs::Dpfs;
pub use geometry::{Region, Shape};
pub use hints::{Dist, FileLevel, Hint, HpfPattern, Placement, RedundancyPolicy, Striping};
pub use layout::{ArrayLayout, BrickRun, Layout, LinearLayout, MultidimLayout};
pub use meta_cache::CachingMetaStore;
pub use placement::{greedy, round_robin, BrickMap};
pub use plan::{Granularity, ReadRequest, WriteRequest};
pub use remote_meta::RemoteMetaStore;
pub use retry::RetryPolicy;
pub use transport::{Pending, Transport, TransportStats, DEFAULT_RPC_TIMEOUT};
