//! The DPFS client: file-system operations over a metadata store and
//! the I/O servers.
//!
//! The metadata side is a [`MetaStore`]: [`Dpfs::mount`] backs it with the
//! in-process SQL catalog (embedded, the original mode), while
//! [`Dpfs::mount_remote`] speaks metadata RPCs to a `dpfs-metad` daemon
//! (paper §5's networked database server), optionally through the
//! generation-validated client cache ([`crate::meta_cache`]). Everything
//! above the store — create/open/rename/readdir and the I/O path — is
//! identical in both modes.

use std::sync::Arc;

use dpfs_meta::catalog::{base_name, normalize_path};
use dpfs_meta::{
    Catalog, Database, Distribution, EmbeddedMetaStore, FileAttrRow, MetaStore, ServerInfo,
};
use dpfs_proto::Request;

use crate::conn::{ConnPool, Resolver};
use crate::error::{DpfsError, Result};
use crate::file::{mirror_subfile, parity_subfile, ClientOptions, FileHandle};
use crate::geometry::Shape;
use crate::hints::{FileLevel, Hint, HpfPattern, Placement, RedundancyPolicy, Striping};
use crate::layout::Layout;
use crate::meta_cache::CachingMetaStore;
use crate::placement::{greedy, round_robin, BrickMap};
use crate::remote_meta::RemoteMetaStore;

/// A DPFS client instance. Cheap to create; each compute node (thread)
/// makes its own, sharing the metadata database or daemon.
pub struct Dpfs {
    meta: Arc<dyn MetaStore>,
    /// Set on remote mounts: the RPC layer under `meta` (trace IDs,
    /// observed generation).
    remote_meta: Option<Arc<RemoteMetaStore>>,
    /// Set on remote mounts with caching enabled: the cache layer
    /// (hit/miss counters, explicit invalidation).
    meta_cache: Option<Arc<CachingMetaStore>>,
    pool: Arc<ConnPool>,
    opts: ClientOptions,
}

fn new_pool(resolver: Resolver, opts: &ClientOptions) -> Arc<ConnPool> {
    let pool = Arc::new(ConnPool::new(Arc::new(resolver)));
    pool.set_rpc_timeout(opts.rpc_timeout);
    pool.set_lockstep(opts.lockstep_rpc);
    // Per-mount jitter seed: an unseeded (default) policy is derived
    // fresh here, so fleets of default-configured clients never retry in
    // lockstep; explicitly seeded policies stay deterministic.
    pool.set_retry_policy(opts.retry.seeded_for_mount());
    pool
}

impl Dpfs {
    /// Mount DPFS embedded: wrap the metadata database in-process and set
    /// up connections.
    pub fn mount(db: Arc<Database>, resolver: Resolver, opts: ClientOptions) -> Result<Dpfs> {
        let pool = new_pool(resolver, &opts);
        Ok(Dpfs {
            meta: Arc::new(EmbeddedMetaStore::new(db)?),
            remote_meta: None,
            meta_cache: None,
            pool,
            opts,
        })
    }

    /// Mount with default options and direct name resolution.
    pub fn mount_simple(db: Arc<Database>) -> Result<Dpfs> {
        Self::mount(db, Resolver::direct(), ClientOptions::default())
    }

    /// Mount DPFS against a `dpfs-metad` daemon: every metadata operation
    /// becomes an RPC to `metad_server` (a name the resolver can dial),
    /// riding the same transport as I/O. With `opts.meta_cache` set (the
    /// default), attrs and layouts are cached client-side under generation
    /// validation; `opts.meta_cache_ttl` bounds how stale `stat` may be.
    pub fn mount_remote(
        metad_server: &str,
        resolver: Resolver,
        opts: ClientOptions,
    ) -> Result<Dpfs> {
        Self::mount_sharded(vec![metad_server.to_string()], resolver, opts)
    }

    /// Mount DPFS against a *sharded* metadata plane: `metad_servers[i]`
    /// is the daemon serving shard `i` of an `N`-wide partition (the
    /// order must match the daemons' `--shard` ids). Each op routes to
    /// the shard owning its path; the client cache validates each shard's
    /// generation independently. With one server this is exactly
    /// [`Dpfs::mount_remote`].
    ///
    /// When more than one shard is mounted, shard 0's advertised map is
    /// cross-checked at mount time so a daemon launched with the wrong
    /// `--shards` width fails the mount instead of corrupting routing.
    pub fn mount_sharded(
        metad_servers: Vec<String>,
        resolver: Resolver,
        opts: ClientOptions,
    ) -> Result<Dpfs> {
        let pool = new_pool(resolver, &opts);
        let remote = Arc::new(RemoteMetaStore::new_sharded(pool.clone(), metad_servers));
        if remote.shard_count() > 1 {
            let (_, width) = remote.fetch_shard_map(0).map_err(DpfsError::Meta)?;
            if width as usize != remote.shard_count() {
                return Err(DpfsError::Meta(dpfs_meta::MetaError::Remote(format!(
                    "metadata shard 0 ({}) serves a {width}-shard plane, \
                     but {} --metad servers were mounted",
                    remote.server(),
                    remote.shard_count()
                ))));
            }
        }
        let (meta, cache): (Arc<dyn MetaStore>, Option<Arc<CachingMetaStore>>) = if opts.meta_cache
        {
            let c = Arc::new(CachingMetaStore::new(remote.clone(), opts.meta_cache_ttl));
            (c.clone(), Some(c))
        } else {
            (remote.clone(), None)
        };
        Ok(Dpfs {
            meta,
            remote_meta: Some(remote),
            meta_cache: cache,
            pool,
            opts,
        })
    }

    /// The metadata store this client operates through.
    pub fn meta(&self) -> &Arc<dyn MetaStore> {
        &self.meta
    }

    /// The embedded metadata catalog, if this mount is embedded. Remote
    /// mounts return `None` — the database lives in the daemon.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.meta.as_catalog()
    }

    /// On remote mounts, the RPC-level metadata store (trace IDs, last
    /// observed generation).
    pub fn remote_meta(&self) -> Option<&Arc<RemoteMetaStore>> {
        self.remote_meta.as_ref()
    }

    /// On cached remote mounts, `(hits, misses)` of the metadata cache.
    pub fn meta_cache_stats(&self) -> Option<(u64, u64)> {
        self.meta_cache.as_ref().map(|c| c.cache_stats())
    }

    /// This client's default options.
    pub fn options(&self) -> ClientOptions {
        self.opts
    }

    /// Register an I/O server in the metadata store.
    pub fn register_server(&self, info: &ServerInfo) -> Result<()> {
        Ok(self.meta.register_server(info)?)
    }

    // ------------------------------------------------------------ create

    /// Create a DPFS file per the hint (paper: `DPFS-Open` for writing with
    /// a hint structure). Returns an open handle.
    pub fn create(&self, path: &str, hint: &Hint) -> Result<FileHandle> {
        let path = normalize_path(path)?;
        let all = self.meta.list_servers()?;
        if all.is_empty() {
            return Err(DpfsError::InvalidArgument(
                "no I/O servers registered".into(),
            ));
        }
        let n = hint.io_nodes.unwrap_or(all.len()).clamp(1, all.len());
        // Deterministic choice: first n servers in name order.
        let chosen: Vec<ServerInfo> = all.into_iter().take(n).collect();
        let names: Vec<String> = chosen.iter().map(|s| s.name.clone()).collect();
        let perf: Vec<i64> = chosen.iter().map(|s| s.performance.max(1)).collect();

        let layout = Layout::from_striping(&hint.striping)?;
        // Under XOR parity the last-named server is dedicated to parity:
        // data stripes over the remaining n - 1.
        let data_servers = match hint.redundancy {
            RedundancyPolicy::None => n,
            RedundancyPolicy::Replica(k) => {
                if k < 2 || k > n {
                    return Err(DpfsError::InvalidArgument(format!(
                        "replica policy needs 2 <= k <= {n} servers, got k = {k}"
                    )));
                }
                n
            }
            RedundancyPolicy::XorParity => {
                if n < 2 {
                    return Err(DpfsError::InvalidArgument(
                        "xor parity needs at least 2 servers (1 data + 1 parity)".into(),
                    ));
                }
                // Byte-offset parity requires every data subfile to lay its
                // bricks out uniformly; array-level chunks are variable.
                if layout.level() == FileLevel::Array {
                    return Err(DpfsError::InvalidArgument(
                        "xor parity requires uniform bricks (linear or multidim level)".into(),
                    ));
                }
                n - 1
            }
        };
        let num_bricks = layout.num_bricks();
        let assignment = match hint.placement {
            Placement::RoundRobin => round_robin(num_bricks, data_servers),
            Placement::Greedy => greedy(num_bricks, &perf[..data_servers]),
        };
        let map = BrickMap::from_assignment(assignment, data_servers);

        let attr = attr_for(&path, hint, &layout);
        let mut dist: Vec<Distribution> = names
            .iter()
            .zip(map.bricklists())
            .map(|(server, bricks)| Distribution {
                server: server.clone(),
                filename: path.clone(),
                bricklist: bricks.iter().map(|&b| b as i64).collect(),
            })
            .collect();
        if hint.redundancy == RedundancyPolicy::XorParity {
            // The parity server holds no bricks but must appear in the
            // distribution so opens see the full server list.
            dist.push(Distribution {
                server: names[n - 1].clone(),
                filename: path.clone(),
                bricklist: Vec::new(),
            });
        }
        self.meta.create_file(&attr, &dist).map_err(|e| match e {
            dpfs_meta::MetaError::DuplicateKey(_) => DpfsError::FileExists(path.clone()),
            other => other.into(),
        })?;

        Ok(FileHandle::new(
            path,
            self.meta.clone(),
            self.pool.clone(),
            names,
            perf,
            layout,
            map,
            hint.placement,
            hint.redundancy,
            self.opts,
            attr.size as u64,
        ))
    }

    // -------------------------------------------------------------- open

    /// Open an existing DPFS file (paper: `DPFS-Open` for reading).
    pub fn open(&self, path: &str) -> Result<FileHandle> {
        self.open_with(path, self.opts)
    }

    /// Open with explicit client options (rank, combination, granularity).
    pub fn open_with(&self, path: &str, opts: ClientOptions) -> Result<FileHandle> {
        let path = normalize_path(path)?;
        let attr = self
            .meta
            .get_file_attr(&path)?
            .ok_or_else(|| DpfsError::NoSuchFile(path.clone()))?;
        let striping = striping_from_attr(&attr)?;
        let layout = Layout::from_striping(&striping)?;
        let dist = self.meta.get_distribution(&path)?;
        if dist.is_empty() {
            return Err(DpfsError::InvalidArgument(format!(
                "file {path} has no distribution rows"
            )));
        }
        let redundancy = RedundancyPolicy::parse(&attr.redundancy)?;
        let names: Vec<String> = dist.iter().map(|d| d.server.clone()).collect();
        let mut lists: Vec<Vec<i64>> = dist.iter().map(|d| d.bricklist.clone()).collect();
        if redundancy == RedundancyPolicy::XorParity {
            // The last (name-ordered) row is the brickless parity server;
            // the brick map covers only the data servers.
            if lists.len() < 2 {
                return Err(DpfsError::InvalidArgument(format!(
                    "xor-parity file {path} has {} distribution rows, needs >= 2",
                    lists.len()
                )));
            }
            lists.pop();
        }
        let map = BrickMap::from_bricklists(&lists)?;
        let mut perf = Vec::with_capacity(names.len());
        for name in &names {
            perf.push(
                self.meta
                    .get_server(name)?
                    .map(|s| s.performance.max(1))
                    .unwrap_or(1),
            );
        }
        let placement = match attr.placement.as_str() {
            "greedy" => Placement::Greedy,
            _ => Placement::RoundRobin,
        };
        Ok(FileHandle::new(
            path,
            self.meta.clone(),
            self.pool.clone(),
            names,
            perf,
            layout,
            map,
            placement,
            redundancy,
            opts,
            attr.size as u64,
        ))
    }

    // --------------------------------------------------- namespace ops

    /// Delete a file: metadata first (transactional), then each server's
    /// subfile.
    pub fn unlink(&self, path: &str) -> Result<()> {
        let path = normalize_path(path)?;
        // Redundant files carry derived subfiles under other names; note
        // the policy before the attribute row disappears.
        let redundancy = self
            .meta
            .get_file_attr(&path)?
            .map(|a| RedundancyPolicy::parse(&a.redundancy))
            .transpose()?
            .unwrap_or_default();
        let dist = self.meta.delete_file(&path).map_err(|e| match e {
            dpfs_meta::MetaError::NoSuchTable(_) => DpfsError::NoSuchFile(path.clone()),
            other => other.into(),
        })?;
        for d in dist {
            // best effort: a dead server must not strand the namespace
            for subfile in subfile_names(&path, redundancy) {
                let _ = self.pool.rpc(&d.server, &Request::Delete { subfile });
            }
        }
        Ok(())
    }

    /// Create a directory.
    pub fn mkdir(&self, path: &str) -> Result<()> {
        self.meta.mkdir(path).map_err(|e| match e {
            dpfs_meta::MetaError::NoSuchTable(m) => DpfsError::NoSuchDirectory(m),
            other => other.into(),
        })
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, path: &str) -> Result<()> {
        Ok(self.meta.rmdir(path)?)
    }

    /// List a directory: `(sub-directory names, file names)`, base names
    /// only, sorted.
    pub fn readdir(&self, path: &str) -> Result<(Vec<String>, Vec<String>)> {
        let entry = self
            .meta
            .get_dir(path)?
            .ok_or_else(|| DpfsError::NoSuchDirectory(path.to_string()))?;
        let mut dirs: Vec<String> = entry
            .sub_dirs
            .iter()
            .map(|d| base_name(d).to_string())
            .collect();
        let mut files: Vec<String> = entry
            .files
            .iter()
            .map(|f| base_name(f).to_string())
            .collect();
        dirs.sort();
        files.sort();
        Ok((dirs, files))
    }

    /// Stat a file. On cached remote mounts this takes the stat path —
    /// the answer may be served from cache within the configured TTL.
    pub fn stat(&self, path: &str) -> Result<FileAttrRow> {
        let path = normalize_path(path)?;
        self.meta
            .stat_file_attr(&path)?
            .ok_or(DpfsError::NoSuchFile(path))
    }

    /// True if the path names an existing file.
    pub fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.meta.stat_file_attr(&normalize_path(path)?)?.is_some())
    }

    /// True if the path names an existing directory.
    pub fn dir_exists(&self, path: &str) -> Result<bool> {
        Ok(self.meta.get_dir(path)?.is_some())
    }

    /// Rename a file. Metadata moves atomically in the catalog; since
    /// subfiles are keyed by DPFS path, each server then copies its subfile
    /// to the new name and deletes the old one.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        let from_n = normalize_path(from)?;
        let to_n = normalize_path(to)?;
        // Move the bytes: read whole subfiles server-side is overkill at
        // this layer; instead we re-point metadata and copy per server.
        let redundancy = self
            .meta
            .get_file_attr(&from_n)?
            .map(|a| RedundancyPolicy::parse(&a.redundancy))
            .transpose()?
            .unwrap_or_default();
        let dist = self.meta.get_distribution(&from_n)?;
        self.meta.rename_file(&from_n, &to_n)?;
        let from_subs = subfile_names(&from_n, redundancy);
        let to_subs = subfile_names(&to_n, redundancy);
        for d in &dist {
            // copy subfile content (and any derived redundant subfiles)
            // under the new name on the same server
            for (from_sub, to_sub) in from_subs.iter().zip(&to_subs) {
                let stat = self.pool.rpc_ok(
                    &d.server,
                    &Request::Stat {
                        subfile: from_sub.clone(),
                    },
                );
                let size = match stat {
                    Ok(dpfs_proto::Response::Stat { exists: true, size }) => size,
                    _ => continue, // nothing written yet on this server
                };
                let data = self.pool.rpc_ok(
                    &d.server,
                    &Request::Read {
                        subfile: from_sub.clone(),
                        ranges: vec![(0, size)],
                    },
                )?;
                if let dpfs_proto::Response::Data { chunks } = data {
                    self.pool.rpc_ok(
                        &d.server,
                        &Request::Write {
                            subfile: to_sub.clone(),
                            ranges: vec![(0, chunks[0].clone())],
                        },
                    )?;
                }
                let _ = self.pool.rpc(
                    &d.server,
                    &Request::Delete {
                        subfile: from_sub.clone(),
                    },
                );
            }
        }
        Ok(())
    }

    /// Connection pool (the shell and tests reach through for pings).
    pub fn pool(&self) -> &Arc<ConnPool> {
        &self.pool
    }
}

/// Build the catalog attribute row for a new file.
fn attr_for(path: &str, hint: &Hint, layout: &Layout) -> FileAttrRow {
    let (dims, dimsize, stripe_dims, stripe_size, pattern) = match &hint.striping {
        Striping::Linear {
            brick_bytes,
            file_bytes: _,
        } => (
            0i64,
            Vec::new(),
            Vec::new(),
            *brick_bytes as i64,
            String::new(),
        ),
        Striping::Multidim {
            array,
            brick,
            elem_bytes,
        } => (
            array.ndims() as i64,
            array.0.iter().map(|&x| x as i64).collect(),
            brick.0.iter().map(|&x| x as i64).collect(),
            *elem_bytes as i64,
            String::new(),
        ),
        Striping::Array {
            array,
            pattern,
            elem_bytes,
        } => (
            array.ndims() as i64,
            array.0.iter().map(|&x| x as i64).collect(),
            pattern.grid().0.iter().map(|&x| x as i64).collect(),
            *elem_bytes as i64,
            pattern.to_pattern_string(),
        ),
    };
    FileAttrRow {
        filename: path.to_string(),
        owner: hint.owner.clone(),
        permission: hint.permission,
        size: match &hint.striping {
            Striping::Linear { file_bytes, .. } => *file_bytes as i64,
            _ => layout.file_bytes() as i64,
        },
        filelevel: layout.level().as_str().to_string(),
        dims,
        dimsize,
        stripe_dims,
        stripe_size,
        pattern,
        placement: match hint.placement {
            Placement::RoundRobin => "round_robin".to_string(),
            Placement::Greedy => "greedy".to_string(),
        },
        redundancy: hint.redundancy.as_str(),
    }
}

/// Every subfile name a server may hold for `path` under `policy`: the
/// primary plus any replica mirrors or the parity sibling. Namespace ops
/// (unlink, rename) sweep all of them per server.
fn subfile_names(path: &str, policy: RedundancyPolicy) -> Vec<String> {
    let mut names = vec![path.to_string()];
    match policy {
        RedundancyPolicy::None => {}
        RedundancyPolicy::Replica(k) => {
            for copy in 1..k {
                names.push(mirror_subfile(path, copy));
            }
        }
        RedundancyPolicy::XorParity => names.push(parity_subfile(path)),
    }
    names
}

/// Reconstruct striping geometry from a catalog attribute row.
pub fn striping_from_attr(attr: &FileAttrRow) -> Result<Striping> {
    match FileLevel::parse(&attr.filelevel)? {
        FileLevel::Linear => Ok(Striping::Linear {
            brick_bytes: attr.stripe_size as u64,
            file_bytes: attr.size as u64,
        }),
        FileLevel::Multidim => Ok(Striping::Multidim {
            array: Shape::new(attr.dimsize.iter().map(|&x| x as u64).collect())?,
            brick: Shape::new(attr.stripe_dims.iter().map(|&x| x as u64).collect())?,
            elem_bytes: attr.stripe_size as u64,
        }),
        FileLevel::Array => Ok(Striping::Array {
            array: Shape::new(attr.dimsize.iter().map(|&x| x as u64).collect())?,
            pattern: HpfPattern::from_catalog(&attr.pattern, &attr.stripe_dims)?,
            elem_bytes: attr.stripe_size as u64,
        }),
    }
}
