//! Request planning: brick runs → per-server requests.
//!
//! Two strategies, after paper §4.2:
//!
//! - **General approach** — one framed request per touched brick, in brick
//!   order. With round-robin striping this makes all clients hammer the
//!   same server in lock-step (client `k`'s first brick and client `k+1`'s
//!   first brick land on the same device), and the request count equals the
//!   brick count.
//! - **Request combination** — all bricks bound for one server coalesce
//!   into a single framed request, and the per-client request sequence is
//!   *staggered*: client `k` starts from server `(k mod S)`, so the S
//!   combined requests of S clients land on S distinct devices
//!   simultaneously. "As these combined bricks are located on the different
//!   physical storage devices, the maximum parallelism can be exploited."
//!
//! Reads transfer at brick granularity by default ([`Granularity::Brick`]):
//! the client fetches whole bricks and discards unneeded bytes — exactly the
//! paper's linear-striping behaviour ("only the first two elements of each
//! brick are really useful, the second half will be discarded", §3.2).
//! [`Granularity::Exact`] requests only the needed byte ranges; it is kept
//! as an ablation knob. Writes always use exact ranges (no read-modify-write
//! is ever needed).

use std::collections::BTreeMap;

use crate::layout::{BrickRun, Layout};
use crate::placement::BrickMap;

/// Read transfer granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Fetch whole bricks, discard unneeded bytes (paper behaviour).
    #[default]
    Brick,
    /// Fetch exactly the needed byte ranges (ablation).
    Exact,
}

/// How one response chunk scatters into the user's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterPiece {
    /// Index of the chunk within the response.
    pub chunk: usize,
    /// Byte offset within that chunk.
    pub chunk_off: u64,
    /// Byte offset within the user's buffer.
    pub buf_off: u64,
    /// Length in bytes.
    pub len: u64,
}

/// One read request bound for one server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRequest {
    /// Target server index (into the file's server list).
    pub server: usize,
    /// `(subfile_offset, len)` ranges to fetch, one response chunk each.
    pub ranges: Vec<(u64, u64)>,
    /// Placement of response bytes into the user's buffer.
    pub scatter: Vec<ScatterPiece>,
    /// For [`Granularity::Brick`]: the brick behind each range (parallel to
    /// `ranges`; lets the client cache whole fetched bricks). Empty in
    /// exact mode.
    pub bricks: Vec<u64>,
}

/// One write request bound for one server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRequest {
    /// Target server index.
    pub server: usize,
    /// `(subfile_offset, buffer_offset, len)` gather ranges.
    pub ranges: Vec<(u64, u64, u64)>,
}

impl ReadRequest {
    /// Total bytes this request will transfer over the wire.
    pub fn wire_bytes(&self) -> u64 {
        self.ranges.iter().map(|(_, l)| l).sum()
    }

    /// Bytes actually placed in the user's buffer.
    pub fn useful_bytes(&self) -> u64 {
        self.scatter.iter().map(|p| p.len).sum()
    }
}

impl WriteRequest {
    /// Total bytes this request carries.
    pub fn wire_bytes(&self) -> u64 {
        self.ranges.iter().map(|(_, _, l)| l).sum()
    }
}

/// One payload-byte ↔ user-buffer mapping within a [`ListRequest`].
///
/// A list request's wire payload is the concatenation of its ranges'
/// bytes in order. Each piece names a slice of that payload and where it
/// lives in the user's buffer: for reads the slice scatters *to*
/// `buf_off`, for writes it gathers *from* `buf_off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListPiece {
    /// Byte offset within the concatenated payload.
    pub payload_off: u64,
    /// Byte offset within the user's buffer.
    pub buf_off: u64,
    /// Length in bytes.
    pub len: u64,
}

/// One list-I/O request bound for one server: the subfile ranges the
/// server will touch, plus the payload↔buffer mapping. Unlike legacy
/// planning there is no per-range framing — whether the ranges travel as
/// a compact [`dpfs_proto::AccessPattern`] or as an enumerated list is
/// the transport cost model's call, made per request in `file.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListRequest {
    /// Target server index (into the file's server list).
    pub server: usize,
    /// Sorted, disjoint `(subfile_offset, len)` ranges, coalesced where
    /// adjacent in *subfile* space. Legacy Exact planning also demands
    /// buffer adjacency before merging (each range is its own framed
    /// chunk, so a merged range must scatter contiguously); here the
    /// payload is one blob and the pieces carry the buffer mapping, so
    /// subfile adjacency alone suffices — strictly more coalescing.
    pub ranges: Vec<(u64, u64)>,
    /// Payload bytes useful to the caller.
    pub pieces: Vec<ListPiece>,
}

impl ListRequest {
    /// Total bytes this request transfers over the wire (payload length).
    pub fn wire_bytes(&self) -> u64 {
        self.ranges.iter().map(|(_, l)| l).sum()
    }

    /// Bytes actually placed in (or taken from) the user's buffer.
    pub fn useful_bytes(&self) -> u64 {
        self.pieces.iter().map(|p| p.len).sum()
    }
}

/// Append `(off, len)` to a sorted range list, merging with the last range
/// when exactly adjacent in subfile space. Returns the payload offset at
/// which this range's bytes begin, or `None` when the range overlaps (or
/// precedes) the previous one — the caller falls back to legacy planning,
/// which tolerates overlap.
fn append_list_range(
    ranges: &mut Vec<(u64, u64)>,
    payload_len: &mut u64,
    off: u64,
    len: u64,
) -> Option<u64> {
    match ranges.last_mut() {
        Some((prev_off, prev_len)) if *prev_off + *prev_len == off => *prev_len += len,
        Some((prev_off, prev_len)) if *prev_off + *prev_len > off => return None,
        _ => ranges.push((off, len)),
    }
    let at = *payload_len;
    *payload_len += len;
    Some(at)
}

/// Plan list-I/O requests for `runs`: one request per touched server,
/// staggered from `start_server` (the list path always combines — shipping
/// one descriptor per brick would defeat its purpose).
///
/// Reads pass the configured `granularity` (Brick fetches whole bricks and
/// the pieces skip the discard bytes); writes must pass
/// [`Granularity::Exact`] — writing whole bricks would clobber bytes the
/// caller never supplied.
///
/// Returns `None` when the runs touch overlapping subfile bytes within one
/// server (possible with self-overlapping datatypes); the caller falls
/// back to legacy planning, which preserves in-order overlap semantics.
pub fn plan_list(
    runs: &[BrickRun],
    map: &BrickMap,
    layout: &Layout,
    granularity: Granularity,
    start_server: usize,
) -> Option<Vec<ListRequest>> {
    let by_brick = runs_by_brick(runs);
    let mut by_server: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for &brick in by_brick.keys() {
        by_server
            .entry(map.server_of(brick))
            .or_default()
            .push(brick);
    }
    // within a server, subfile order == slot order
    for bricks in by_server.values_mut() {
        bricks.sort_by_key(|&b| map.slot_of(b));
    }
    let mut out = Vec::with_capacity(by_server.len());
    for server in rotated_servers(by_server.keys().copied(), map.num_servers(), start_server) {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        let mut pieces: Vec<ListPiece> = Vec::new();
        let mut payload_len: u64 = 0;
        for &brick in &by_server[&server] {
            let base = map.subfile_offset(brick, layout);
            match granularity {
                Granularity::Brick => {
                    let at = append_list_range(
                        &mut ranges,
                        &mut payload_len,
                        base,
                        layout.brick_len(brick),
                    )?;
                    for r in &by_brick[&brick] {
                        pieces.push(ListPiece {
                            payload_off: at + r.brick_off,
                            buf_off: r.buf_off,
                            len: r.len,
                        });
                    }
                }
                Granularity::Exact => {
                    let mut sorted: Vec<&BrickRun> = by_brick[&brick].iter().collect();
                    sorted.sort_by_key(|r| r.brick_off);
                    for r in sorted {
                        let at = append_list_range(
                            &mut ranges,
                            &mut payload_len,
                            base + r.brick_off,
                            r.len,
                        )?;
                        pieces.push(ListPiece {
                            payload_off: at,
                            buf_off: r.buf_off,
                            len: r.len,
                        });
                    }
                }
            }
        }
        out.push(ListRequest {
            server,
            ranges,
            pieces,
        });
    }
    Some(out)
}

/// Group runs by brick, preserving run order within each brick.
fn runs_by_brick(runs: &[BrickRun]) -> BTreeMap<u64, Vec<BrickRun>> {
    let mut by_brick: BTreeMap<u64, Vec<BrickRun>> = BTreeMap::new();
    for r in runs {
        by_brick.entry(r.brick).or_default().push(*r);
    }
    by_brick
}

/// Rotate server indices so the sequence begins at `start`: the paper's
/// staggered schedule.
fn rotated_servers(
    servers: impl Iterator<Item = usize>,
    num_servers: usize,
    start: usize,
) -> Vec<usize> {
    let mut present: Vec<usize> = servers.collect();
    present.sort_unstable();
    present.dedup();
    let start = if num_servers == 0 {
        0
    } else {
        start % num_servers
    };
    let pivot = present.partition_point(|&s| s < start);
    let mut out = Vec::with_capacity(present.len());
    out.extend_from_slice(&present[pivot..]);
    out.extend_from_slice(&present[..pivot]);
    out
}

/// Plan read requests for `runs`. `start_server` is this client's stagger
/// origin (its rank); only meaningful with `combine`.
pub fn plan_reads(
    runs: &[BrickRun],
    map: &BrickMap,
    layout: &Layout,
    combine: bool,
    granularity: Granularity,
    start_server: usize,
) -> Vec<ReadRequest> {
    let by_brick = runs_by_brick(runs);
    if !combine {
        // one request per brick, ascending brick order
        return by_brick
            .iter()
            .map(|(&brick, brick_runs)| {
                read_request_for_bricks(
                    map.server_of(brick),
                    [(brick, brick_runs.as_slice())].into_iter(),
                    map,
                    layout,
                    granularity,
                )
            })
            .collect();
    }
    // combined: group bricks by server, one request per server, staggered
    let mut by_server: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for &brick in by_brick.keys() {
        by_server
            .entry(map.server_of(brick))
            .or_default()
            .push(brick);
    }
    // within a server, order bricks by subfile position for sequential I/O
    for bricks in by_server.values_mut() {
        bricks.sort_by_key(|&b| map.slot_of(b));
    }
    rotated_servers(by_server.keys().copied(), map.num_servers(), start_server)
        .into_iter()
        .map(|server| {
            let bricks = &by_server[&server];
            read_request_for_bricks(
                server,
                bricks.iter().map(|b| (*b, by_brick[b].as_slice())),
                map,
                layout,
                granularity,
            )
        })
        .collect()
}

fn read_request_for_bricks<'a>(
    server: usize,
    bricks: impl Iterator<Item = (u64, &'a [BrickRun])>,
    map: &BrickMap,
    layout: &Layout,
    granularity: Granularity,
) -> ReadRequest {
    let mut ranges = Vec::new();
    let mut scatter = Vec::new();
    let mut brick_ids = Vec::new();
    for (brick, brick_runs) in bricks {
        let base = map.subfile_offset(brick, layout);
        match granularity {
            Granularity::Brick => {
                let chunk = ranges.len();
                ranges.push((base, layout.brick_len(brick)));
                brick_ids.push(brick);
                for r in brick_runs {
                    scatter.push(ScatterPiece {
                        chunk,
                        chunk_off: r.brick_off,
                        buf_off: r.buf_off,
                        len: r.len,
                    });
                }
            }
            Granularity::Exact => {
                // one range per run, coalescing runs adjacent in both the
                // subfile and the buffer
                let mut sorted: Vec<&BrickRun> = brick_runs.iter().collect();
                sorted.sort_by_key(|r| r.brick_off);
                for r in sorted {
                    let last_chunk = ranges.len().wrapping_sub(1);
                    let coalesced = match (ranges.last_mut(), scatter.last_mut()) {
                        (Some((off, len)), Some(piece))
                            if *off + *len == base + r.brick_off
                                && piece.buf_off + piece.len == r.buf_off
                                && piece.chunk == last_chunk =>
                        {
                            *len += r.len;
                            piece.len += r.len;
                            true
                        }
                        _ => false,
                    };
                    if !coalesced {
                        let chunk = ranges.len();
                        ranges.push((base + r.brick_off, r.len));
                        scatter.push(ScatterPiece {
                            chunk,
                            chunk_off: 0,
                            buf_off: r.buf_off,
                            len: r.len,
                        });
                    }
                }
            }
        }
    }
    ReadRequest {
        server,
        ranges,
        scatter,
        bricks: brick_ids,
    }
}

/// Plan write requests for `runs`.
pub fn plan_writes(
    runs: &[BrickRun],
    map: &BrickMap,
    layout: &Layout,
    combine: bool,
    start_server: usize,
) -> Vec<WriteRequest> {
    let by_brick = runs_by_brick(runs);
    let brick_ranges = |brick: u64, brick_runs: &[BrickRun]| -> Vec<(u64, u64, u64)> {
        let base = map.subfile_offset(brick, layout);
        let mut sorted: Vec<&BrickRun> = brick_runs.iter().collect();
        sorted.sort_by_key(|r| r.brick_off);
        let mut out: Vec<(u64, u64, u64)> = Vec::with_capacity(sorted.len());
        for r in sorted {
            match out.last_mut() {
                Some((off, boff, len))
                    if *off + *len == base + r.brick_off && *boff + *len == r.buf_off =>
                {
                    *len += r.len;
                }
                _ => out.push((base + r.brick_off, r.buf_off, r.len)),
            }
        }
        out
    };
    if !combine {
        return by_brick
            .iter()
            .map(|(&brick, brick_runs)| WriteRequest {
                server: map.server_of(brick),
                ranges: brick_ranges(brick, brick_runs),
            })
            .collect();
    }
    let mut by_server: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for &brick in by_brick.keys() {
        by_server
            .entry(map.server_of(brick))
            .or_default()
            .push(brick);
    }
    for bricks in by_server.values_mut() {
        bricks.sort_by_key(|&b| map.slot_of(b));
    }
    rotated_servers(by_server.keys().copied(), map.num_servers(), start_server)
        .into_iter()
        .map(|server| {
            let mut ranges = Vec::new();
            for &brick in &by_server[&server] {
                ranges.extend(brick_ranges(brick, &by_brick[&brick]));
            }
            WriteRequest { server, ranges }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LinearLayout;
    use crate::placement::round_robin;

    /// Figure 3 setting: 32-brick linear file round-robin over 4 servers.
    fn fig3() -> (Layout, BrickMap) {
        let layout = Layout::Linear(LinearLayout::new(64, 32 * 64).unwrap());
        let map = BrickMap::from_assignment(round_robin(32, 4), 4);
        (layout, map)
    }

    /// Runs covering whole bricks `lo..hi`.
    fn whole_brick_runs(layout: &Layout, lo: u64, hi: u64) -> Vec<BrickRun> {
        (lo..hi)
            .map(|b| BrickRun {
                brick: b,
                brick_off: 0,
                buf_off: (b - lo) * layout.brick_len(b),
                len: layout.brick_len(b),
            })
            .collect()
    }

    #[test]
    fn general_approach_one_request_per_brick() {
        // §4.2: processor 0 accesses bricks 0-7 -> 8 requests
        let (layout, map) = fig3();
        let runs = whole_brick_runs(&layout, 0, 8);
        let reqs = plan_reads(&runs, &map, &layout, false, Granularity::Brick, 0);
        assert_eq!(reqs.len(), 8);
        // requests in brick order: servers cycle 0,1,2,3,0,1,2,3
        let servers: Vec<usize> = reqs.iter().map(|r| r.server).collect();
        assert_eq!(servers, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn combined_approach_one_request_per_server() {
        // §4.2: "there are only 4 requests needed for each processor, much
        // smaller than 8 requests of general approach"
        let (layout, map) = fig3();
        let runs = whole_brick_runs(&layout, 0, 8);
        let reqs = plan_reads(&runs, &map, &layout, true, Granularity::Brick, 0);
        assert_eq!(reqs.len(), 4);
        // processor 0 starts from server 0 with bricks 0 and 4 in one request
        assert_eq!(reqs[0].server, 0);
        assert_eq!(reqs[0].ranges.len(), 2);
        assert_eq!(reqs[0].ranges[0], (0, 64)); // brick 0 at slot 0
        assert_eq!(reqs[0].ranges[1], (64, 64)); // brick 4 at slot 1
    }

    #[test]
    fn staggered_schedule_matches_paper() {
        // §4.2: "processor 0 starts its access from subfile-0 (brick 0, 4),
        // while processor 1 starts from subfile-1 (brick 9, 13), processor 2
        // from subfile-2 (brick 18, 22) and processor 3 from subfile-3
        // (brick 27, 31)"
        let (layout, map) = fig3();
        for rank in 0..4usize {
            let lo = rank as u64 * 8;
            let runs = whole_brick_runs(&layout, lo, lo + 8);
            let reqs = plan_reads(&runs, &map, &layout, true, Granularity::Brick, rank);
            assert_eq!(
                reqs[0].server, rank,
                "processor {rank} starts at subfile-{rank}"
            );
            // the first request's bricks match the paper's listing
            let expected_first_bricks: Vec<u64> = match rank {
                0 => vec![0, 4],
                1 => vec![9, 13],
                2 => vec![18, 22],
                3 => vec![27, 31],
                _ => unreachable!(),
            };
            let first_offsets: Vec<u64> = expected_first_bricks
                .iter()
                .map(|&b| map.subfile_offset(b, &layout))
                .collect();
            let got_offsets: Vec<u64> = reqs[0].ranges.iter().map(|(o, _)| *o).collect();
            assert_eq!(got_offsets, first_offsets);
        }
    }

    #[test]
    fn brick_granularity_fetches_whole_bricks() {
        let (layout, map) = fig3();
        // 2 useful bytes from brick 0
        let runs = vec![BrickRun {
            brick: 0,
            brick_off: 10,
            buf_off: 0,
            len: 2,
        }];
        let reqs = plan_reads(&runs, &map, &layout, false, Granularity::Brick, 0);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].wire_bytes(), 64); // whole brick on the wire
        assert_eq!(reqs[0].useful_bytes(), 2); // 2 bytes kept
        assert_eq!(
            reqs[0].scatter,
            vec![ScatterPiece {
                chunk: 0,
                chunk_off: 10,
                buf_off: 0,
                len: 2
            }]
        );
    }

    #[test]
    fn exact_granularity_fetches_only_needed() {
        let (layout, map) = fig3();
        let runs = vec![BrickRun {
            brick: 0,
            brick_off: 10,
            buf_off: 0,
            len: 2,
        }];
        let reqs = plan_reads(&runs, &map, &layout, false, Granularity::Exact, 0);
        assert_eq!(reqs[0].wire_bytes(), 2);
        assert_eq!(reqs[0].ranges, vec![(10, 2)]);
    }

    #[test]
    fn exact_granularity_coalesces_adjacent() {
        let (layout, map) = fig3();
        let runs = vec![
            BrickRun {
                brick: 0,
                brick_off: 0,
                buf_off: 0,
                len: 8,
            },
            BrickRun {
                brick: 0,
                brick_off: 8,
                buf_off: 8,
                len: 8,
            },
            BrickRun {
                brick: 0,
                brick_off: 32,
                buf_off: 16,
                len: 4,
            },
        ];
        let reqs = plan_reads(&runs, &map, &layout, false, Granularity::Exact, 0);
        assert_eq!(reqs[0].ranges, vec![(0, 16), (32, 4)]);
    }

    #[test]
    fn writes_use_exact_ranges_and_combine() {
        let (layout, map) = fig3();
        let runs = whole_brick_runs(&layout, 0, 8);
        let general = plan_writes(&runs, &map, &layout, false, 0);
        assert_eq!(general.len(), 8);
        let combined = plan_writes(&runs, &map, &layout, true, 0);
        assert_eq!(combined.len(), 4);
        // server 0 receives bricks 0 and 4, contiguous slots 0 and 1:
        // ranges coalesce only if buffer offsets are also adjacent;
        // buffer offsets are 0 and 4*64=256, so they stay separate
        assert_eq!(combined[0].ranges.len(), 2);
        let total: u64 = combined.iter().map(|r| r.wire_bytes()).sum();
        assert_eq!(total, 8 * 64);
    }

    #[test]
    fn write_coalescing_when_buffer_adjacent() {
        let (layout, map) = fig3();
        // two runs adjacent in both subfile and buffer within brick 0
        let runs = vec![
            BrickRun {
                brick: 0,
                brick_off: 0,
                buf_off: 0,
                len: 4,
            },
            BrickRun {
                brick: 0,
                brick_off: 4,
                buf_off: 4,
                len: 4,
            },
        ];
        let reqs = plan_writes(&runs, &map, &layout, false, 0);
        assert_eq!(reqs[0].ranges, vec![(0, 0, 8)]);
    }

    #[test]
    fn rotation_with_absent_servers() {
        // only servers 1 and 3 touched; start at 2 -> order 3, 1
        let (layout, map) = fig3();
        let runs = vec![
            BrickRun {
                brick: 1,
                brick_off: 0,
                buf_off: 0,
                len: 64,
            },
            BrickRun {
                brick: 3,
                brick_off: 0,
                buf_off: 64,
                len: 64,
            },
        ];
        let reqs = plan_reads(&runs, &map, &layout, true, Granularity::Brick, 2);
        let servers: Vec<usize> = reqs.iter().map(|r| r.server).collect();
        assert_eq!(servers, vec![3, 1]);
    }

    #[test]
    fn empty_runs_plan_nothing() {
        let (layout, map) = fig3();
        assert!(plan_reads(&[], &map, &layout, true, Granularity::Brick, 0).is_empty());
        assert!(plan_writes(&[], &map, &layout, false, 0).is_empty());
        assert!(plan_list(&[], &map, &layout, Granularity::Exact, 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn list_plan_coalesces_on_subfile_adjacency_alone() {
        let (layout, map) = fig3();
        // Bricks 0 and 4 live at server 0 slots 0 and 1 — adjacent in the
        // subfile but far apart in the buffer. Legacy write planning keeps
        // them as two ranges (`writes_use_exact_ranges_and_combine`); the
        // list planner merges them and lets the pieces carry the mapping.
        let runs = whole_brick_runs(&layout, 0, 8);
        let reqs = plan_list(&runs, &map, &layout, Granularity::Exact, 0).unwrap();
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].server, 0);
        assert_eq!(reqs[0].ranges, vec![(0, 128)]); // bricks 0+4 merged
        assert_eq!(
            reqs[0].pieces,
            vec![
                ListPiece {
                    payload_off: 0,
                    buf_off: 0,
                    len: 64
                },
                ListPiece {
                    payload_off: 64,
                    buf_off: 4 * 64,
                    len: 64
                },
            ]
        );
        assert_eq!(reqs[0].wire_bytes(), 128);
        assert_eq!(reqs[0].useful_bytes(), 128);
    }

    #[test]
    fn list_plan_brick_granularity_marks_discard_bytes() {
        let (layout, map) = fig3();
        let runs = vec![BrickRun {
            brick: 0,
            brick_off: 10,
            buf_off: 0,
            len: 2,
        }];
        let reqs = plan_list(&runs, &map, &layout, Granularity::Brick, 0).unwrap();
        assert_eq!(reqs[0].ranges, vec![(0, 64)]); // whole brick on the wire
        assert_eq!(
            reqs[0].pieces,
            vec![ListPiece {
                payload_off: 10,
                buf_off: 0,
                len: 2
            }]
        );
        assert_eq!(reqs[0].useful_bytes(), 2);
    }

    #[test]
    fn list_plan_staggers_like_legacy() {
        let (layout, map) = fig3();
        let runs = whole_brick_runs(&layout, 0, 8);
        for rank in 0..4usize {
            let reqs = plan_list(&runs, &map, &layout, Granularity::Exact, rank).unwrap();
            assert_eq!(reqs[0].server, rank);
        }
    }

    #[test]
    fn list_plan_rejects_overlapping_runs() {
        let (layout, map) = fig3();
        let runs = vec![
            BrickRun {
                brick: 0,
                brick_off: 0,
                buf_off: 0,
                len: 8,
            },
            BrickRun {
                brick: 0,
                brick_off: 4, // overlaps the first run's bytes 4..8
                buf_off: 8,
                len: 8,
            },
        ];
        assert!(plan_list(&runs, &map, &layout, Granularity::Exact, 0).is_none());
        // legacy planning still accepts them
        assert!(!plan_writes(&runs, &map, &layout, true, 0).is_empty());
    }
}
