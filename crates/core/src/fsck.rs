//! File-system consistency checker (extension).
//!
//! The paper's pitch for database-backed metadata is easy, reliable
//! consistency (§5). `fsck` makes that checkable: it audits the four
//! catalog tables against each other — and, optionally, against the
//! servers' actual subfiles — and reports every violation it finds.

use std::collections::{BTreeSet, HashMap};

use dpfs_proto::Request;

use crate::error::{DpfsError, Result};
use crate::fs::{striping_from_attr, Dpfs};
use crate::layout::Layout;
use crate::placement::BrickMap;

/// fsck audits raw catalog tables, so it needs the database in-process.
fn embedded_only() -> DpfsError {
    DpfsError::InvalidArgument(
        "fsck requires an embedded mount (run it against the metadata database directly)".into(),
    )
}

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Issue {
    /// A `dpfs_file_distribution` row references a file with no attribute
    /// row.
    OrphanDistribution { filename: String, server: String },
    /// A file has an attribute row but no distribution rows.
    MissingDistribution { filename: String },
    /// A file's brick lists do not form a partition of `0..num_bricks`.
    CorruptBricklists { filename: String, detail: String },
    /// A file's attribute row cannot be interpreted (bad level/geometry).
    BadAttributes { filename: String, detail: String },
    /// A directory lists a file that has no attribute row.
    DanglingDirEntry { dir: String, name: String },
    /// A file's attribute row is not listed in its parent directory.
    UnlistedFile { filename: String },
    /// A directory row's parent is missing or does not list it.
    OrphanDirectory { dir: String },
    /// A directory listed as a child has no row of its own.
    MissingDirectory { dir: String, parent: String },
    /// A distribution row references a server absent from `dpfs_server`.
    UnknownServer { filename: String, server: String },
    /// Online check: a server that should hold data has no subfile.
    SubfileMissing { filename: String, server: String },
    /// Online check: a subfile is larger than its bricks allow.
    SubfileOversized {
        filename: String,
        server: String,
        max_expected: u64,
        actual: u64,
    },
    /// Online check: a server did not respond.
    ServerUnreachable { server: String },
    /// Online check: a redundant file's mirror or parity subfile is
    /// missing or shorter than the data it must protect (e.g. after a
    /// server came back with an empty disk). [`fsck_reprotect`] rebuilds
    /// these from the surviving copies.
    UnderProtected {
        filename: String,
        server: String,
        subfile: String,
    },
}

/// Result of a check run.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// All violations found, in discovery order.
    pub issues: Vec<Issue>,
    /// Files audited.
    pub files_checked: usize,
    /// Directories audited.
    pub dirs_checked: usize,
    /// Subfiles statted on servers (online mode).
    pub subfiles_checked: usize,
}

impl FsckReport {
    /// True when no violations were found.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Audit the catalog. With `online`, also stat every subfile on its server.
pub fn fsck(fs: &Dpfs, online: bool) -> Result<FsckReport> {
    fsck_with(fs, online, false)
}

/// Like [`fsck`], with a `strict` online mode that additionally flags
/// *missing* subfiles of fully-written linear files. Strict mode assumes no
/// sparse files (a sparse write legitimately leaves some servers without a
/// subfile), so it is opt-in.
pub fn fsck_with(fs: &Dpfs, online: bool, strict: bool) -> Result<FsckReport> {
    let mut report = FsckReport::default();
    let catalog = fs.catalog().ok_or_else(embedded_only)?;
    let db = catalog.db();

    // Load the raw tables once.
    let attrs = db.execute("SELECT filename FROM dpfs_file_attr ORDER BY filename")?;
    let file_names: Vec<String> = attrs
        .rows
        .iter()
        .map(|r| Ok(r[0].as_text()?.to_string()))
        .collect::<Result<_>>()?;
    let file_set: BTreeSet<&String> = file_names.iter().collect();

    let servers: BTreeSet<String> = catalog
        .list_servers()?
        .into_iter()
        .map(|s| s.name)
        .collect();

    let dist_rows = db.execute(
        "SELECT filename, server, bricklist FROM dpfs_file_distribution ORDER BY filename, server",
    )?;
    let mut dist_by_file: HashMap<String, Vec<(String, Vec<i64>)>> = HashMap::new();
    for row in &dist_rows.rows {
        let filename = row[0].as_text()?.to_string();
        let server = row[1].as_text()?.to_string();
        let bricklist = row[2].as_int_list()?.to_vec();
        if !file_set.contains(&filename) {
            report.issues.push(Issue::OrphanDistribution {
                filename: filename.clone(),
                server: server.clone(),
            });
        }
        if !servers.contains(&server) {
            report.issues.push(Issue::UnknownServer {
                filename: filename.clone(),
                server: server.clone(),
            });
        }
        dist_by_file
            .entry(filename)
            .or_default()
            .push((server, bricklist));
    }

    // Per-file checks.
    for filename in &file_names {
        report.files_checked += 1;
        let attr = catalog
            .get_file_attr(filename)?
            .expect("listed a moment ago");
        let layout = match striping_from_attr(&attr).and_then(|s| Layout::from_striping(&s)) {
            Ok(l) => l,
            Err(e) => {
                report.issues.push(Issue::BadAttributes {
                    filename: filename.clone(),
                    detail: e.to_string(),
                });
                continue;
            }
        };
        let Some(dist) = dist_by_file.get(filename) else {
            report.issues.push(Issue::MissingDistribution {
                filename: filename.clone(),
            });
            continue;
        };
        let lists: Vec<Vec<i64>> = dist.iter().map(|(_, l)| l.clone()).collect();
        let map = match BrickMap::from_bricklists(&lists) {
            Ok(m) => m,
            Err(e) => {
                report.issues.push(Issue::CorruptBricklists {
                    filename: filename.clone(),
                    detail: e.to_string(),
                });
                continue;
            }
        };
        // for linear files the map may exceed the declared layout (growth
        // updates both, but size is authoritative); require map >= layout
        if map.num_bricks() < layout.num_bricks() {
            report.issues.push(Issue::CorruptBricklists {
                filename: filename.clone(),
                detail: format!(
                    "{} bricks mapped, layout requires {}",
                    map.num_bricks(),
                    layout.num_bricks()
                ),
            });
        }

        if online {
            // Missing-subfile inference is only sound when the admin asserts
            // files are not sparse (strict), and then only for linear files
            // whose size attribute tracks the written extent.
            let fully_written = strict
                && matches!(layout, Layout::Linear(_))
                && attr.size as u64 >= layout.file_bytes()
                && attr.size > 0;
            let policy = crate::hints::RedundancyPolicy::parse(&attr.redundancy);
            // Under XOR parity the last distribution row is the brickless
            // parity holder; primary-subfile checks cover the data rows.
            let data_rows = match policy {
                Ok(crate::hints::RedundancyPolicy::XorParity) if dist.len() >= 2 => dist.len() - 1,
                _ => dist.len(),
            };
            let mut primary_sizes: Vec<Option<u64>> = Vec::with_capacity(data_rows);
            for (server, list) in dist.iter().take(data_rows) {
                report.subfiles_checked += 1;
                let max_expected: u64 = list.iter().map(|&b| layout.brick_len(b as u64)).sum();
                match fs.pool().rpc(
                    server,
                    &Request::Stat {
                        subfile: filename.clone(),
                    },
                ) {
                    Ok(dpfs_proto::Response::Stat { exists, size }) => {
                        // A partially-written file may legitimately have no
                        // subfile on some servers; a fully-written one may
                        // not.
                        if !exists && fully_written && !list.is_empty() {
                            report.issues.push(Issue::SubfileMissing {
                                filename: filename.clone(),
                                server: server.clone(),
                            });
                        }
                        if size > max_expected {
                            report.issues.push(Issue::SubfileOversized {
                                filename: filename.clone(),
                                server: server.clone(),
                                max_expected,
                                actual: size,
                            });
                        }
                        primary_sizes.push(Some(if exists { size } else { 0 }));
                    }
                    Ok(_) | Err(_) => {
                        report.issues.push(Issue::ServerUnreachable {
                            server: server.clone(),
                        });
                        primary_sizes.push(None);
                    }
                }
            }
            match policy {
                Ok(p) => check_protection(fs, filename, p, dist, &primary_sizes, &mut report),
                Err(e) => report.issues.push(Issue::BadAttributes {
                    filename: filename.clone(),
                    detail: e.to_string(),
                }),
            }
        }
    }

    // Directory-tree checks: walk from the root.
    let dir_rows = db.execute("SELECT main_dir FROM dpfs_directory ORDER BY main_dir")?;
    let all_dirs: BTreeSet<String> = dir_rows
        .rows
        .iter()
        .map(|r| Ok(r[0].as_text()?.to_string()))
        .collect::<Result<_>>()?;
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut listed_files: BTreeSet<String> = BTreeSet::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        if !reachable.insert(dir.clone()) {
            continue;
        }
        report.dirs_checked += 1;
        let Some(entry) = catalog.get_dir(&dir)? else {
            continue;
        };
        for sub in &entry.sub_dirs {
            if all_dirs.contains(sub) {
                stack.push(sub.clone());
            } else {
                report.issues.push(Issue::MissingDirectory {
                    dir: sub.clone(),
                    parent: dir.clone(),
                });
            }
        }
        for f in &entry.files {
            if !file_set.contains(f) {
                report.issues.push(Issue::DanglingDirEntry {
                    dir: dir.clone(),
                    name: f.clone(),
                });
            }
            listed_files.insert(f.clone());
        }
    }
    for dir in &all_dirs {
        if !reachable.contains(dir) {
            report
                .issues
                .push(Issue::OrphanDirectory { dir: dir.clone() });
        }
    }
    for f in &file_names {
        if !listed_files.contains(f) {
            report.issues.push(Issue::UnlistedFile {
                filename: f.clone(),
            });
        }
    }

    Ok(report)
}

/// Stat one subfile: `Some(size)` (0 = absent) or `None` when the server
/// is unreachable.
fn stat_subfile(fs: &Dpfs, server: &str, subfile: &str) -> Option<u64> {
    match fs.pool().rpc(
        server,
        &Request::Stat {
            subfile: subfile.to_string(),
        },
    ) {
        Ok(dpfs_proto::Response::Stat { exists, size }) => Some(if exists { size } else { 0 }),
        _ => None,
    }
}

fn read_subfile(fs: &Dpfs, server: &str, subfile: &str, len: u64) -> Result<Vec<u8>> {
    if len == 0 {
        return Ok(Vec::new());
    }
    match fs.pool().rpc_ok(
        server,
        &Request::Read {
            subfile: subfile.to_string(),
            ranges: vec![(0, len)],
        },
    )? {
        dpfs_proto::Response::Data { chunks } => Ok(chunks[0].to_vec()),
        other => Err(DpfsError::InvalidArgument(format!(
            "expected Data from {server}, got {other:?}"
        ))),
    }
}

fn write_subfile(fs: &Dpfs, server: &str, subfile: &str, data: Vec<u8>) -> Result<()> {
    fs.pool().rpc_ok(
        server,
        &Request::Write {
            subfile: subfile.to_string(),
            ranges: vec![(0, bytes::Bytes::from(data))],
        },
    )?;
    Ok(())
}

/// Online protection audit for one redundant file: every copy group
/// (primary + mirrors under `Replica(k)`, data + parity under
/// `XorParity`) must be mutually consistent in size.
fn check_protection(
    fs: &Dpfs,
    filename: &str,
    policy: crate::hints::RedundancyPolicy,
    dist: &[(String, Vec<i64>)],
    primary_sizes: &[Option<u64>],
    report: &mut FsckReport,
) {
    use crate::file::{mirror_subfile, parity_subfile};
    use crate::hints::RedundancyPolicy;
    let n = dist.len();
    match policy {
        RedundancyPolicy::None => {}
        RedundancyPolicy::Replica(k) => {
            // Copies of a stripe are byte-identical by construction, so a
            // copy smaller than the largest in its group lost data.
            for s in 0..n {
                let mut group: Vec<(usize, String, Option<u64>)> = vec![(
                    s,
                    filename.to_string(),
                    primary_sizes.get(s).copied().flatten(),
                )];
                for copy in 1..k {
                    let host = (s + copy) % n;
                    let sub = mirror_subfile(filename, copy);
                    report.subfiles_checked += 1;
                    let size = stat_subfile(fs, &dist[host].0, &sub);
                    group.push((host, sub, size));
                }
                let best = group.iter().filter_map(|(_, _, sz)| *sz).max().unwrap_or(0);
                if best == 0 {
                    continue;
                }
                for (host, sub, sz) in group {
                    if sz.is_some_and(|sz| sz < best) {
                        report.issues.push(Issue::UnderProtected {
                            filename: filename.to_string(),
                            server: dist[host].0.clone(),
                            subfile: sub,
                        });
                    }
                }
            }
        }
        RedundancyPolicy::XorParity => {
            if n < 2 {
                return; // MissingDistribution / open() reject this already
            }
            let data_n = n - 1;
            let psub = parity_subfile(filename);
            report.subfiles_checked += 1;
            let parity_size = stat_subfile(fs, &dist[data_n].0, &psub);
            let data_max = primary_sizes[..data_n]
                .iter()
                .filter_map(|s| *s)
                .max()
                .unwrap_or(0);
            if let Some(psize) = parity_size {
                // Parity must cover the longest data subfile.
                if psize < data_max {
                    report.issues.push(Issue::UnderProtected {
                        filename: filename.to_string(),
                        server: dist[data_n].0.clone(),
                        subfile: psub,
                    });
                }
                // A data server with assigned bricks and nothing on disk
                // while live parity exists has (conservatively) lost its
                // subfile; reconstruction of a legitimately-unwritten one
                // just rewrites its zeros.
                if psize > 0 {
                    for (s, (server, bricks)) in dist.iter().take(data_n).enumerate() {
                        if primary_sizes.get(s).copied().flatten() == Some(0) && !bricks.is_empty()
                        {
                            report.issues.push(Issue::UnderProtected {
                                filename: filename.to_string(),
                                server: server.clone(),
                                subfile: filename.to_string(),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Rebuild lost redundancy after a server came back with an empty disk:
/// for every redundant file, compare all copies of each subfile and
/// rewrite the deficient ones from the survivors — the largest replica
/// copy under `Replica(k)`, parity ⊕ surviving peers under `XorParity` —
/// then bring stale parity itself up to date. Copies on unreachable
/// servers are left alone; a data subfile whose parity is also lost is
/// reported unfixable. Requires an embedded mount, like [`fsck`].
pub fn fsck_reprotect(fs: &Dpfs) -> Result<RepairSummary> {
    use crate::hints::RedundancyPolicy;
    let catalog = fs.catalog().ok_or_else(embedded_only)?;
    let db = catalog.db();
    let mut summary = RepairSummary::default();
    let files = db.execute("SELECT filename FROM dpfs_file_attr ORDER BY filename")?;
    for row in &files.rows {
        let filename = row[0].as_text()?.to_string();
        let Some(attr) = catalog.get_file_attr(&filename)? else {
            continue;
        };
        let Ok(policy) = RedundancyPolicy::parse(&attr.redundancy) else {
            continue; // fsck reports BadAttributes; nothing to rebuild from
        };
        let dist = catalog.get_distribution(&filename)?;
        match policy {
            RedundancyPolicy::None => {}
            RedundancyPolicy::Replica(k) => {
                reprotect_replica(fs, &filename, &dist, k, &mut summary)?;
            }
            RedundancyPolicy::XorParity => {
                let Ok(layout) = striping_from_attr(&attr).and_then(|s| Layout::from_striping(&s))
                else {
                    continue;
                };
                reprotect_parity(fs, &filename, &dist, &layout, &mut summary)?;
            }
        }
    }
    Ok(summary)
}

fn reprotect_replica(
    fs: &Dpfs,
    filename: &str,
    dist: &[dpfs_meta::Distribution],
    k: usize,
    summary: &mut RepairSummary,
) -> Result<()> {
    use crate::file::mirror_subfile;
    let n = dist.len();
    for s in 0..n {
        let mut group: Vec<(usize, String)> = vec![(s, filename.to_string())];
        for copy in 1..k {
            group.push(((s + copy) % n, mirror_subfile(filename, copy)));
        }
        let sizes: Vec<Option<u64>> = group
            .iter()
            .map(|(host, sub)| stat_subfile(fs, &dist[*host].server, sub))
            .collect();
        // The largest reachable copy is authoritative (copies are written
        // in lockstep, so a shorter one lost its tail or everything).
        let Some(best_idx) = (0..group.len())
            .filter(|&i| sizes[i].is_some())
            .max_by_key(|&i| sizes[i])
        else {
            continue;
        };
        let best = sizes[best_idx].expect("filtered to reachable");
        if best == 0 {
            continue;
        }
        let (best_host, best_sub) = &group[best_idx];
        let data = read_subfile(fs, &dist[*best_host].server, best_sub, best)?;
        for (i, (host, sub)) in group.iter().enumerate() {
            if sizes[i].is_some_and(|sz| sz < best) {
                write_subfile(fs, &dist[*host].server, sub, data.clone())?;
                summary.fixed.push(format!(
                    "rebuilt replica copy {sub} on {}",
                    dist[*host].server
                ));
            }
        }
    }
    Ok(())
}

fn reprotect_parity(
    fs: &Dpfs,
    filename: &str,
    dist: &[dpfs_meta::Distribution],
    layout: &Layout,
    summary: &mut RepairSummary,
) -> Result<()> {
    use crate::file::parity_subfile;
    let n = dist.len();
    if n < 2 {
        return Ok(());
    }
    let data_n = n - 1;
    let psub = parity_subfile(filename);
    let parity_server = dist[data_n].server.clone();
    let sizes: Vec<Option<u64>> = (0..data_n)
        .map(|s| stat_subfile(fs, &dist[s].server, filename))
        .collect();
    let parity_size = stat_subfile(fs, &parity_server, &psub);
    let target = sizes
        .iter()
        .filter_map(|s| *s)
        .chain(parity_size)
        .max()
        .unwrap_or(0);
    if target == 0 {
        return Ok(());
    }
    // Rebuild lost data subfiles first — recomputing parity from partial
    // data would destroy the only copy of what they held.
    for s in 0..data_n {
        let max_expected: u64 = dist[s]
            .bricklist
            .iter()
            .map(|&b| layout.brick_len(b as u64))
            .sum();
        // Clamp to the server's brick allotment so the rebuilt subfile
        // never trips the SubfileOversized check.
        let want = target.min(max_expected);
        let Some(have) = sizes[s] else {
            continue; // unreachable: leave it alone
        };
        if have > 0 || want == 0 || dist[s].bricklist.is_empty() {
            continue; // conservative: rebuild only empty-disk losses
        }
        if parity_size.is_none_or(|p| p < want) {
            summary.unfixable.push(Issue::UnderProtected {
                filename: filename.to_string(),
                server: dist[s].server.clone(),
                subfile: filename.to_string(),
            });
            continue;
        }
        // parity ⊕ surviving peers over [0, want): reads past a subfile's
        // extent zero-fill, so short peers contribute zeros.
        let mut acc = read_subfile(fs, &parity_server, &psub, want)?;
        for p in (0..data_n).filter(|&p| p != s) {
            let peer = read_subfile(fs, &dist[p].server, filename, want)?;
            for (a, b) in acc.iter_mut().zip(&peer) {
                *a ^= b;
            }
        }
        write_subfile(fs, &dist[s].server, filename, acc)?;
        summary.fixed.push(format!(
            "reconstructed data subfile {filename} on {}",
            dist[s].server
        ));
    }
    // Then bring parity itself up to date.
    if parity_size.is_some_and(|p| p < target) {
        let mut acc = vec![0u8; target as usize];
        for row in dist.iter().take(data_n) {
            let peer = read_subfile(fs, &row.server, filename, target)?;
            for (a, b) in acc.iter_mut().zip(&peer) {
                *a ^= b;
            }
        }
        write_subfile(fs, &parity_server, &psub, acc)?;
        summary
            .fixed
            .push(format!("recomputed parity {psub} on {parity_server}"));
    }
    Ok(())
}

/// Outcome of a repair pass.
#[derive(Debug, Default)]
pub struct RepairSummary {
    /// Human-readable descriptions of fixes applied.
    pub fixed: Vec<String>,
    /// Issues that cannot be repaired automatically (risk of data loss).
    pub unfixable: Vec<Issue>,
}

/// Run an offline check, repair what is safely repairable, and return the
/// post-repair report plus a summary of actions. Safe repairs: dropping
/// orphan distribution rows, unlinking dangling directory entries,
/// re-linking unlisted files and orphan directories, creating missing
/// directory rows. Anything touching file data (missing/corrupt brick
/// lists, bad attributes, unknown servers) is reported, never guessed.
pub fn fsck_repair(fs: &Dpfs) -> Result<(FsckReport, RepairSummary)> {
    use dpfs_meta::catalog::{parent_dir, sql_quote};
    let before = fsck(fs, false)?;
    let mut summary = RepairSummary::default();
    let catalog = fs.catalog().ok_or_else(embedded_only)?;
    let db = catalog.db();
    for issue in &before.issues {
        match issue {
            Issue::OrphanDistribution { filename, server } => {
                db.execute(&format!(
                    "DELETE FROM dpfs_file_distribution WHERE filename = '{}' AND server = '{}'",
                    sql_quote(filename),
                    sql_quote(server)
                ))?;
                summary.fixed.push(format!(
                    "dropped orphan distribution row {server}:{filename}"
                ));
            }
            Issue::DanglingDirEntry { dir, name } => {
                if let Some(entry) = catalog.get_dir(dir)? {
                    let files: Vec<String> =
                        entry.files.into_iter().filter(|f| f != name).collect();
                    db.execute(&format!(
                        "UPDATE dpfs_directory SET files = '{}' WHERE main_dir = '{}'",
                        sql_quote(&files.join("\n")),
                        sql_quote(dir)
                    ))?;
                    summary
                        .fixed
                        .push(format!("removed dangling entry {name} from {dir}"));
                }
            }
            Issue::UnlistedFile { filename } => {
                let Some(parent) = parent_dir(filename) else {
                    summary.unfixable.push(issue.clone());
                    continue;
                };
                match catalog.get_dir(&parent)? {
                    Some(entry) => {
                        let mut files = entry.files;
                        files.push(filename.clone());
                        db.execute(&format!(
                            "UPDATE dpfs_directory SET files = '{}' WHERE main_dir = '{}'",
                            sql_quote(&files.join("\n")),
                            sql_quote(&parent)
                        ))?;
                        summary
                            .fixed
                            .push(format!("re-linked {filename} into {parent}"));
                    }
                    None => summary.unfixable.push(issue.clone()),
                }
            }
            Issue::OrphanDirectory { dir } => {
                let Some(parent) = parent_dir(dir) else {
                    summary.unfixable.push(issue.clone());
                    continue;
                };
                match catalog.get_dir(&parent)? {
                    Some(entry) => {
                        let mut subs = entry.sub_dirs;
                        if !subs.contains(dir) {
                            subs.push(dir.clone());
                        }
                        db.execute(&format!(
                            "UPDATE dpfs_directory SET sub_dirs = '{}' WHERE main_dir = '{}'",
                            sql_quote(&subs.join("\n")),
                            sql_quote(&parent)
                        ))?;
                        summary
                            .fixed
                            .push(format!("re-linked directory {dir} into {parent}"));
                    }
                    None => summary.unfixable.push(issue.clone()),
                }
            }
            Issue::MissingDirectory { dir, .. } => {
                db.execute(&format!(
                    "INSERT INTO dpfs_directory VALUES ('{}', '', '')",
                    sql_quote(dir)
                ))?;
                summary
                    .fixed
                    .push(format!("created missing directory row {dir}"));
            }
            other => summary.unfixable.push(other.clone()),
        }
    }
    let after = fsck(fs, false)?;
    Ok((after, summary))
}

#[cfg(test)]
mod tests {
    // fsck needs live servers; end-to-end tests live in
    // crates/core/tests/fsck.rs. Here we only check report plumbing.
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let r = FsckReport::default();
        assert!(r.clean());
    }

    #[test]
    fn report_with_issue_is_dirty() {
        let mut r = FsckReport::default();
        r.issues.push(Issue::UnlistedFile {
            filename: "/f".into(),
        });
        assert!(!r.clean());
    }
}
