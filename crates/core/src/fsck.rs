//! File-system consistency checker (extension).
//!
//! The paper's pitch for database-backed metadata is easy, reliable
//! consistency (§5). `fsck` makes that checkable: it audits the four
//! catalog tables against each other — and, optionally, against the
//! servers' actual subfiles — and reports every violation it finds.

use std::collections::{BTreeSet, HashMap};

use dpfs_proto::Request;

use crate::error::{DpfsError, Result};
use crate::fs::{striping_from_attr, Dpfs};
use crate::layout::Layout;
use crate::placement::BrickMap;

/// fsck audits raw catalog tables, so it needs the database in-process.
fn embedded_only() -> DpfsError {
    DpfsError::InvalidArgument(
        "fsck requires an embedded mount (run it against the metadata database directly)".into(),
    )
}

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Issue {
    /// A `dpfs_file_distribution` row references a file with no attribute
    /// row.
    OrphanDistribution { filename: String, server: String },
    /// A file has an attribute row but no distribution rows.
    MissingDistribution { filename: String },
    /// A file's brick lists do not form a partition of `0..num_bricks`.
    CorruptBricklists { filename: String, detail: String },
    /// A file's attribute row cannot be interpreted (bad level/geometry).
    BadAttributes { filename: String, detail: String },
    /// A directory lists a file that has no attribute row.
    DanglingDirEntry { dir: String, name: String },
    /// A file's attribute row is not listed in its parent directory.
    UnlistedFile { filename: String },
    /// A directory row's parent is missing or does not list it.
    OrphanDirectory { dir: String },
    /// A directory listed as a child has no row of its own.
    MissingDirectory { dir: String, parent: String },
    /// A distribution row references a server absent from `dpfs_server`.
    UnknownServer { filename: String, server: String },
    /// Online check: a server that should hold data has no subfile.
    SubfileMissing { filename: String, server: String },
    /// Online check: a subfile is larger than its bricks allow.
    SubfileOversized {
        filename: String,
        server: String,
        max_expected: u64,
        actual: u64,
    },
    /// Online check: a server did not respond.
    ServerUnreachable { server: String },
}

/// Result of a check run.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// All violations found, in discovery order.
    pub issues: Vec<Issue>,
    /// Files audited.
    pub files_checked: usize,
    /// Directories audited.
    pub dirs_checked: usize,
    /// Subfiles statted on servers (online mode).
    pub subfiles_checked: usize,
}

impl FsckReport {
    /// True when no violations were found.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Audit the catalog. With `online`, also stat every subfile on its server.
pub fn fsck(fs: &Dpfs, online: bool) -> Result<FsckReport> {
    fsck_with(fs, online, false)
}

/// Like [`fsck`], with a `strict` online mode that additionally flags
/// *missing* subfiles of fully-written linear files. Strict mode assumes no
/// sparse files (a sparse write legitimately leaves some servers without a
/// subfile), so it is opt-in.
pub fn fsck_with(fs: &Dpfs, online: bool, strict: bool) -> Result<FsckReport> {
    let mut report = FsckReport::default();
    let catalog = fs.catalog().ok_or_else(embedded_only)?;
    let db = catalog.db();

    // Load the raw tables once.
    let attrs = db.execute("SELECT filename FROM dpfs_file_attr ORDER BY filename")?;
    let file_names: Vec<String> = attrs
        .rows
        .iter()
        .map(|r| Ok(r[0].as_text()?.to_string()))
        .collect::<Result<_>>()?;
    let file_set: BTreeSet<&String> = file_names.iter().collect();

    let servers: BTreeSet<String> = catalog
        .list_servers()?
        .into_iter()
        .map(|s| s.name)
        .collect();

    let dist_rows = db.execute(
        "SELECT filename, server, bricklist FROM dpfs_file_distribution ORDER BY filename, server",
    )?;
    let mut dist_by_file: HashMap<String, Vec<(String, Vec<i64>)>> = HashMap::new();
    for row in &dist_rows.rows {
        let filename = row[0].as_text()?.to_string();
        let server = row[1].as_text()?.to_string();
        let bricklist = row[2].as_int_list()?.to_vec();
        if !file_set.contains(&filename) {
            report.issues.push(Issue::OrphanDistribution {
                filename: filename.clone(),
                server: server.clone(),
            });
        }
        if !servers.contains(&server) {
            report.issues.push(Issue::UnknownServer {
                filename: filename.clone(),
                server: server.clone(),
            });
        }
        dist_by_file
            .entry(filename)
            .or_default()
            .push((server, bricklist));
    }

    // Per-file checks.
    for filename in &file_names {
        report.files_checked += 1;
        let attr = catalog
            .get_file_attr(filename)?
            .expect("listed a moment ago");
        let layout = match striping_from_attr(&attr).and_then(|s| Layout::from_striping(&s)) {
            Ok(l) => l,
            Err(e) => {
                report.issues.push(Issue::BadAttributes {
                    filename: filename.clone(),
                    detail: e.to_string(),
                });
                continue;
            }
        };
        let Some(dist) = dist_by_file.get(filename) else {
            report.issues.push(Issue::MissingDistribution {
                filename: filename.clone(),
            });
            continue;
        };
        let lists: Vec<Vec<i64>> = dist.iter().map(|(_, l)| l.clone()).collect();
        let map = match BrickMap::from_bricklists(&lists) {
            Ok(m) => m,
            Err(e) => {
                report.issues.push(Issue::CorruptBricklists {
                    filename: filename.clone(),
                    detail: e.to_string(),
                });
                continue;
            }
        };
        // for linear files the map may exceed the declared layout (growth
        // updates both, but size is authoritative); require map >= layout
        if map.num_bricks() < layout.num_bricks() {
            report.issues.push(Issue::CorruptBricklists {
                filename: filename.clone(),
                detail: format!(
                    "{} bricks mapped, layout requires {}",
                    map.num_bricks(),
                    layout.num_bricks()
                ),
            });
        }

        if online {
            // Missing-subfile inference is only sound when the admin asserts
            // files are not sparse (strict), and then only for linear files
            // whose size attribute tracks the written extent.
            let fully_written = strict
                && matches!(layout, Layout::Linear(_))
                && attr.size as u64 >= layout.file_bytes()
                && attr.size > 0;
            for (server, list) in dist.iter() {
                report.subfiles_checked += 1;
                let max_expected: u64 = list.iter().map(|&b| layout.brick_len(b as u64)).sum();
                match fs.pool().rpc(
                    server,
                    &Request::Stat {
                        subfile: filename.clone(),
                    },
                ) {
                    Ok(dpfs_proto::Response::Stat { exists, size }) => {
                        // A partially-written file may legitimately have no
                        // subfile on some servers; a fully-written one may
                        // not.
                        if !exists && fully_written && !list.is_empty() {
                            report.issues.push(Issue::SubfileMissing {
                                filename: filename.clone(),
                                server: server.clone(),
                            });
                        }
                        if size > max_expected {
                            report.issues.push(Issue::SubfileOversized {
                                filename: filename.clone(),
                                server: server.clone(),
                                max_expected,
                                actual: size,
                            });
                        }
                    }
                    Ok(_) | Err(_) => {
                        report.issues.push(Issue::ServerUnreachable {
                            server: server.clone(),
                        });
                    }
                }
            }
        }
    }

    // Directory-tree checks: walk from the root.
    let dir_rows = db.execute("SELECT main_dir FROM dpfs_directory ORDER BY main_dir")?;
    let all_dirs: BTreeSet<String> = dir_rows
        .rows
        .iter()
        .map(|r| Ok(r[0].as_text()?.to_string()))
        .collect::<Result<_>>()?;
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut listed_files: BTreeSet<String> = BTreeSet::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        if !reachable.insert(dir.clone()) {
            continue;
        }
        report.dirs_checked += 1;
        let Some(entry) = catalog.get_dir(&dir)? else {
            continue;
        };
        for sub in &entry.sub_dirs {
            if all_dirs.contains(sub) {
                stack.push(sub.clone());
            } else {
                report.issues.push(Issue::MissingDirectory {
                    dir: sub.clone(),
                    parent: dir.clone(),
                });
            }
        }
        for f in &entry.files {
            if !file_set.contains(f) {
                report.issues.push(Issue::DanglingDirEntry {
                    dir: dir.clone(),
                    name: f.clone(),
                });
            }
            listed_files.insert(f.clone());
        }
    }
    for dir in &all_dirs {
        if !reachable.contains(dir) {
            report
                .issues
                .push(Issue::OrphanDirectory { dir: dir.clone() });
        }
    }
    for f in &file_names {
        if !listed_files.contains(f) {
            report.issues.push(Issue::UnlistedFile {
                filename: f.clone(),
            });
        }
    }

    Ok(report)
}

/// Outcome of a repair pass.
#[derive(Debug, Default)]
pub struct RepairSummary {
    /// Human-readable descriptions of fixes applied.
    pub fixed: Vec<String>,
    /// Issues that cannot be repaired automatically (risk of data loss).
    pub unfixable: Vec<Issue>,
}

/// Run an offline check, repair what is safely repairable, and return the
/// post-repair report plus a summary of actions. Safe repairs: dropping
/// orphan distribution rows, unlinking dangling directory entries,
/// re-linking unlisted files and orphan directories, creating missing
/// directory rows. Anything touching file data (missing/corrupt brick
/// lists, bad attributes, unknown servers) is reported, never guessed.
pub fn fsck_repair(fs: &Dpfs) -> Result<(FsckReport, RepairSummary)> {
    use dpfs_meta::catalog::{parent_dir, sql_quote};
    let before = fsck(fs, false)?;
    let mut summary = RepairSummary::default();
    let catalog = fs.catalog().ok_or_else(embedded_only)?;
    let db = catalog.db();
    for issue in &before.issues {
        match issue {
            Issue::OrphanDistribution { filename, server } => {
                db.execute(&format!(
                    "DELETE FROM dpfs_file_distribution WHERE filename = '{}' AND server = '{}'",
                    sql_quote(filename),
                    sql_quote(server)
                ))?;
                summary.fixed.push(format!(
                    "dropped orphan distribution row {server}:{filename}"
                ));
            }
            Issue::DanglingDirEntry { dir, name } => {
                if let Some(entry) = catalog.get_dir(dir)? {
                    let files: Vec<String> =
                        entry.files.into_iter().filter(|f| f != name).collect();
                    db.execute(&format!(
                        "UPDATE dpfs_directory SET files = '{}' WHERE main_dir = '{}'",
                        sql_quote(&files.join("\n")),
                        sql_quote(dir)
                    ))?;
                    summary
                        .fixed
                        .push(format!("removed dangling entry {name} from {dir}"));
                }
            }
            Issue::UnlistedFile { filename } => {
                let Some(parent) = parent_dir(filename) else {
                    summary.unfixable.push(issue.clone());
                    continue;
                };
                match catalog.get_dir(&parent)? {
                    Some(entry) => {
                        let mut files = entry.files;
                        files.push(filename.clone());
                        db.execute(&format!(
                            "UPDATE dpfs_directory SET files = '{}' WHERE main_dir = '{}'",
                            sql_quote(&files.join("\n")),
                            sql_quote(&parent)
                        ))?;
                        summary
                            .fixed
                            .push(format!("re-linked {filename} into {parent}"));
                    }
                    None => summary.unfixable.push(issue.clone()),
                }
            }
            Issue::OrphanDirectory { dir } => {
                let Some(parent) = parent_dir(dir) else {
                    summary.unfixable.push(issue.clone());
                    continue;
                };
                match catalog.get_dir(&parent)? {
                    Some(entry) => {
                        let mut subs = entry.sub_dirs;
                        if !subs.contains(dir) {
                            subs.push(dir.clone());
                        }
                        db.execute(&format!(
                            "UPDATE dpfs_directory SET sub_dirs = '{}' WHERE main_dir = '{}'",
                            sql_quote(&subs.join("\n")),
                            sql_quote(&parent)
                        ))?;
                        summary
                            .fixed
                            .push(format!("re-linked directory {dir} into {parent}"));
                    }
                    None => summary.unfixable.push(issue.clone()),
                }
            }
            Issue::MissingDirectory { dir, .. } => {
                db.execute(&format!(
                    "INSERT INTO dpfs_directory VALUES ('{}', '', '')",
                    sql_quote(dir)
                ))?;
                summary
                    .fixed
                    .push(format!("created missing directory row {dir}"));
            }
            other => summary.unfixable.push(other.clone()),
        }
    }
    let after = fsck(fs, false)?;
    Ok((after, summary))
}

#[cfg(test)]
mod tests {
    // fsck needs live servers; end-to-end tests live in
    // crates/core/tests/fsck.rs. Here we only check report plumbing.
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let r = FsckReport::default();
        assert!(r.clean());
    }

    #[test]
    fn report_with_issue_is_dirty() {
        let mut r = FsckReport::default();
        r.issues.push(Issue::UnlistedFile {
            filename: "/f".into(),
        });
        assert!(!r.clean());
    }
}
