//! Client-side brick cache (extension).
//!
//! The paper's DPFS relies solely on the *server-side* local file system for
//! caching (§2, footnote 1). A client-side brick cache is the natural next
//! step the paper leaves open: repeated reads of hot bricks skip the network
//! round trip entirely. The cache operates at brick granularity — the same
//! unit the wire protocol moves — with LRU eviction under a byte budget.
//!
//! Writes invalidate affected bricks (write-invalidate, not write-update:
//! partial-brick writes would otherwise require read-modify-write).

use std::collections::HashMap;

use bytes::Bytes;

/// LRU brick cache keyed by brick number (one cache per open file).
pub struct BrickCache {
    capacity: u64,
    used: u64,
    entries: HashMap<u64, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
}

struct Entry {
    data: Bytes,
    last_used: u64,
}

impl BrickCache {
    /// New cache holding at most `capacity` bytes (0 disables insertion).
    pub fn new(capacity: u64) -> BrickCache {
        BrickCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a brick; counts a hit or miss.
    pub fn get(&mut self, brick: u64) -> Option<Bytes> {
        self.clock += 1;
        match self.entries.get_mut(&brick) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                Some(e.data.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching LRU order or statistics.
    pub fn contains(&self, brick: u64) -> bool {
        self.entries.contains_key(&brick)
    }

    /// Insert a brick, evicting least-recently-used entries to fit. Bricks
    /// larger than the whole capacity are not cached.
    pub fn insert(&mut self, brick: u64, data: Bytes) {
        let len = data.len() as u64;
        if len > self.capacity {
            return;
        }
        self.invalidate(brick);
        while self.used + len > self.capacity {
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            self.invalidate(victim);
        }
        self.clock += 1;
        self.used += len;
        self.entries.insert(
            brick,
            Entry {
                data,
                last_used: self.clock,
            },
        );
    }

    /// Drop a brick (called on writes covering it).
    pub fn invalidate(&mut self, brick: u64) {
        if let Some(e) = self.entries.remove(&brick) {
            self.used -= e.data.len() as u64;
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used = 0;
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of cached bricks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn hit_and_miss() {
        let mut c = BrickCache::new(1000);
        assert!(c.get(0).is_none());
        c.insert(0, bytes(100, 1));
        assert_eq!(c.get(0).unwrap(), bytes(100, 1));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BrickCache::new(300);
        c.insert(0, bytes(100, 0));
        c.insert(1, bytes(100, 1));
        c.insert(2, bytes(100, 2));
        // touch 0 so 1 becomes LRU
        assert!(c.get(0).is_some());
        c.insert(3, bytes(100, 3));
        assert!(c.contains(0));
        assert!(!c.contains(1), "brick 1 was LRU and must be evicted");
        assert!(c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.used_bytes(), 300);
    }

    #[test]
    fn oversized_not_cached() {
        let mut c = BrickCache::new(50);
        c.insert(0, bytes(100, 0));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces() {
        let mut c = BrickCache::new(200);
        c.insert(0, bytes(100, 1));
        c.insert(0, bytes(50, 2));
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(c.get(0).unwrap(), bytes(50, 2));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = BrickCache::new(500);
        c.insert(0, bytes(100, 0));
        c.insert(1, bytes(100, 1));
        c.invalidate(0);
        assert!(!c.contains(0));
        assert_eq!(c.used_bytes(), 100);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn eviction_frees_enough_for_large_entry() {
        let mut c = BrickCache::new(300);
        c.insert(0, bytes(100, 0));
        c.insert(1, bytes(100, 1));
        c.insert(2, bytes(100, 2));
        c.insert(3, bytes(250, 3)); // must evict several
        assert!(c.contains(3));
        assert!(c.used_bytes() <= 300);
    }
}
