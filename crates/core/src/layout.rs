//! File layouts: mapping accesses to bricks for the three file levels.
//!
//! "A striping method decides the shape and size of a striping unit which is
//! the basic accessing unit and building block of a DPFS file" (paper §3).
//! A DPFS file is a sequence of bricks numbered from zero; this module
//! computes, for any access, exactly which byte ranges of which bricks are
//! touched and where they land in the user's buffer.
//!
//! - [`LinearLayout`] — §3.1: bricks are contiguous byte runs of the linear
//!   file.
//! - [`MultidimLayout`] — §3.2: bricks are N-d tiles of the array; solves
//!   the columnar-access explosion of linear striping (8×8 example of
//!   Figures 5/6, 64K×64K example of §3.2).
//! - [`ArrayLayout`] — §3.3: bricks are whole HPF chunks, stored as integral
//!   units for checkpoint-style access.

use crate::error::{DpfsError, Result};
use crate::geometry::{Region, Shape};
use crate::hints::{Dist, FileLevel, HpfPattern, Striping};

/// One contiguous transfer between a brick and the user's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrickRun {
    /// Brick number within the DPFS file.
    pub brick: u64,
    /// Byte offset within the brick.
    pub brick_off: u64,
    /// Byte offset within the user's buffer.
    pub buf_off: u64,
    /// Transfer length in bytes.
    pub len: u64,
}

/// A file layout: one of the three striping methods, with its geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layout {
    Linear(LinearLayout),
    Multidim(MultidimLayout),
    Array(ArrayLayout),
}

impl Layout {
    /// Build a layout from striping hints, validating geometry.
    pub fn from_striping(s: &Striping) -> Result<Layout> {
        match s {
            Striping::Linear {
                brick_bytes,
                file_bytes,
            } => Ok(Layout::Linear(LinearLayout::new(
                *brick_bytes,
                *file_bytes,
            )?)),
            Striping::Multidim {
                array,
                brick,
                elem_bytes,
            } => Ok(Layout::Multidim(MultidimLayout::new(
                array.clone(),
                brick.clone(),
                *elem_bytes,
            )?)),
            Striping::Array {
                array,
                pattern,
                elem_bytes,
            } => Ok(Layout::Array(ArrayLayout::new(
                array.clone(),
                pattern.clone(),
                *elem_bytes,
            )?)),
        }
    }

    /// The file level of this layout.
    pub fn level(&self) -> FileLevel {
        match self {
            Layout::Linear(_) => FileLevel::Linear,
            Layout::Multidim(_) => FileLevel::Multidim,
            Layout::Array(_) => FileLevel::Array,
        }
    }

    /// Number of bricks in the file.
    pub fn num_bricks(&self) -> u64 {
        match self {
            Layout::Linear(l) => l.num_bricks(),
            Layout::Multidim(l) => l.num_bricks(),
            Layout::Array(l) => l.num_bricks(),
        }
    }

    /// On-disk size in bytes of brick `b` (uniform for linear/multidim;
    /// per-chunk for array level).
    pub fn brick_len(&self, b: u64) -> u64 {
        match self {
            Layout::Linear(l) => l.brick_bytes,
            Layout::Multidim(l) => l.brick_volume_bytes(),
            Layout::Array(l) => l.chunk_len(b),
        }
    }

    /// Total logical file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        match self {
            Layout::Linear(l) => l.file_bytes,
            Layout::Multidim(l) => l.array.volume() * l.elem_bytes,
            Layout::Array(l) => l.array.volume() * l.elem_bytes,
        }
    }
}

// ---------------------------------------------------------------- linear

/// Linear striping (paper §3.1): the file is a byte stream cut into
/// fixed-size bricks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearLayout {
    /// Brick size in bytes.
    pub brick_bytes: u64,
    /// Declared file size in bytes (bricks assigned at creation; may grow).
    pub file_bytes: u64,
}

impl LinearLayout {
    /// Construct, rejecting zero brick size.
    pub fn new(brick_bytes: u64, file_bytes: u64) -> Result<LinearLayout> {
        if brick_bytes == 0 {
            return Err(DpfsError::InvalidArgument("zero brick size".into()));
        }
        Ok(LinearLayout {
            brick_bytes,
            file_bytes,
        })
    }

    /// Bricks needed for the declared size (at least 1).
    pub fn num_bricks(&self) -> u64 {
        bricks_for(self.file_bytes, self.brick_bytes)
    }

    /// Map a byte range (`file_off`, `len`) to brick runs; `buf_base` is
    /// the buffer offset corresponding to `file_off`.
    pub fn map_bytes(&self, file_off: u64, len: u64, buf_base: u64) -> Vec<BrickRun> {
        let mut runs = Vec::new();
        let mut off = file_off;
        let end = file_off + len;
        while off < end {
            let brick = off / self.brick_bytes;
            let brick_off = off % self.brick_bytes;
            let take = (self.brick_bytes - brick_off).min(end - off);
            runs.push(BrickRun {
                brick,
                brick_off,
                buf_off: buf_base + (off - file_off),
                len: take,
            });
            off += take;
        }
        runs
    }
}

/// Ceil-divide bytes into bricks, minimum 1.
pub fn bricks_for(bytes: u64, brick_bytes: u64) -> u64 {
    bytes.div_ceil(brick_bytes).max(1)
}

// ------------------------------------------------------------- multidim

/// Multidimensional striping (paper §3.2): each brick is an N-d tile.
/// Edge tiles that stick out past the array boundary are stored padded, so
/// every brick occupies the same on-disk size and addressing stays uniform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultidimLayout {
    /// Global array shape (elements).
    pub array: Shape,
    /// Brick tile shape (elements).
    pub brick: Shape,
    /// Bytes per element.
    pub elem_bytes: u64,
    /// Brick-grid shape: `ceil(array[i] / brick[i])` per dim.
    grid: Shape,
}

impl MultidimLayout {
    /// Construct, validating rank agreement and nonzero element size.
    pub fn new(array: Shape, brick: Shape, elem_bytes: u64) -> Result<MultidimLayout> {
        if elem_bytes == 0 {
            return Err(DpfsError::InvalidArgument("zero element size".into()));
        }
        let grid = array.grid_for(&brick)?;
        Ok(MultidimLayout {
            array,
            brick,
            elem_bytes,
            grid,
        })
    }

    /// The brick-grid shape.
    pub fn grid(&self) -> &Shape {
        &self.grid
    }

    /// Number of bricks.
    pub fn num_bricks(&self) -> u64 {
        self.grid.volume()
    }

    /// On-disk bytes per brick (full tile, padded at edges).
    pub fn brick_volume_bytes(&self) -> u64 {
        self.brick.volume() * self.elem_bytes
    }

    /// The array region covered by brick `b` (clipped to the array).
    pub fn brick_region(&self, b: u64) -> Region {
        let g = self.grid.delinearize(b);
        let origin: Vec<u64> = g.iter().zip(&self.brick.0).map(|(c, t)| c * t).collect();
        let extent: Vec<u64> = origin
            .iter()
            .zip(&self.brick.0)
            .zip(&self.array.0)
            .map(|((o, t), d)| (*t).min(d - o))
            .collect();
        Region { origin, extent }
    }

    /// Bricks overlapping `region`, in increasing brick order.
    pub fn bricks_of_region(&self, region: &Region) -> Vec<u64> {
        let lo: Vec<u64> = region
            .origin
            .iter()
            .zip(&self.brick.0)
            .map(|(o, t)| o / t)
            .collect();
        let hi: Vec<u64> = region
            .end()
            .iter()
            .zip(&self.brick.0)
            .map(|(e, t)| (e - 1) / t)
            .collect();
        let mut out = Vec::new();
        let mut cursor = lo.clone();
        loop {
            out.push(self.grid.linearize(&cursor));
            // odometer from last dim
            let mut i = cursor.len();
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                cursor[i] += 1;
                if cursor[i] <= hi[i] {
                    break;
                }
                cursor[i] = lo[i];
            }
        }
    }

    /// Map an element-space `region` to brick runs. The user's buffer holds
    /// the region packed row-major, `region.volume() * elem_bytes` bytes.
    pub fn map_region(&self, region: &Region) -> Result<Vec<BrickRun>> {
        if !region.fits_in(&self.array) {
            return Err(DpfsError::InvalidArgument(format!(
                "region {:?}+{:?} outside array {:?}",
                region.origin, region.extent, self.array.0
            )));
        }
        let mut runs = Vec::new();
        let region_shape = Shape(region.extent.clone());
        for b in self.bricks_of_region(region) {
            let brect = self.brick_region(b);
            let Some(inter) = region.intersect(&brect) else {
                continue;
            };
            // Iterate row segments of the intersection (innermost dim runs):
            // contiguous both in brick storage and in the region buffer.
            push_row_segments(
                &inter,
                self.elem_bytes,
                &mut runs,
                b,
                // brick-local coordinates use the *full* tile shape
                |coord| {
                    let local: Vec<u64> = coord
                        .iter()
                        .zip(&brect.origin)
                        .map(|(c, o)| c - o)
                        .collect();
                    // position of this brick's origin within the tile is 0;
                    // tile strides come from the uniform brick shape
                    self.brick.linearize(&local)
                },
                |coord| {
                    let local: Vec<u64> = coord
                        .iter()
                        .zip(&region.origin)
                        .map(|(c, o)| c - o)
                        .collect();
                    region_shape.linearize(&local)
                },
            );
        }
        Ok(runs)
    }
}

/// Shared helper: walk the row segments (innermost-dimension runs) of
/// `inter`, emitting a [`BrickRun`] per segment with offsets produced by the
/// two linearizers (element units, scaled by `elem_bytes`).
fn push_row_segments(
    inter: &Region,
    elem_bytes: u64,
    runs: &mut Vec<BrickRun>,
    brick: u64,
    brick_linear: impl Fn(&[u64]) -> u64,
    buf_linear: impl Fn(&[u64]) -> u64,
) {
    let n = inter.ndims();
    let row_len = inter.extent[n - 1];
    let mut counter = vec![0u64; n - 1];
    loop {
        let mut coord = inter.origin.clone();
        for i in 0..n - 1 {
            coord[i] += counter[i];
        }
        runs.push(BrickRun {
            brick,
            brick_off: brick_linear(&coord) * elem_bytes,
            buf_off: buf_linear(&coord) * elem_bytes,
            len: row_len * elem_bytes,
        });
        // odometer over outer dims
        let mut i = n - 1;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            counter[i] += 1;
            if counter[i] < inter.extent[i] {
                break;
            }
            counter[i] = 0;
        }
    }
}

// ---------------------------------------------------------------- array

/// Array striping (paper §3.3): each brick is one whole HPF chunk — the
/// elements one processor owns — stored packed as that processor's *local
/// array* (standard HPF local storage: cyclic dimensions collapse).
///
/// BLOCK and `*` come from the paper; CYCLIC and CYCLIC(b) are the
/// extension completing the HPF distribution set. For pure-BLOCK patterns a
/// chunk is a rectangle ([`ArrayLayout::chunk_region`]); cyclic chunks are
/// unions of blocks and have no bounding rectangle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    /// Global array shape (elements).
    pub array: Shape,
    /// HPF distribution pattern.
    pub pattern: HpfPattern,
    /// Bytes per element.
    pub elem_bytes: u64,
    /// Processor-grid shape.
    grid: Shape,
    /// Distribution block size per dimension (`*`: the whole extent;
    /// BLOCK: `ceil(d/p)`; CYCLIC: 1; CYCLIC(b): `b`).
    block: Vec<u64>,
    /// `owned[dim][g]` = how many global indices grid coordinate `g` owns
    /// along `dim` (the local-array extent).
    owned: Vec<Vec<u64>>,
}

impl ArrayLayout {
    /// Construct, validating the pattern against the array shape. Patterns
    /// leaving any processor with an empty chunk are rejected (a brick must
    /// have nonzero size).
    pub fn new(array: Shape, pattern: HpfPattern, elem_bytes: u64) -> Result<ArrayLayout> {
        if elem_bytes == 0 {
            return Err(DpfsError::InvalidArgument("zero element size".into()));
        }
        if pattern.ndims() != array.ndims() {
            return Err(DpfsError::InvalidArgument(format!(
                "pattern rank {} != array rank {}",
                pattern.ndims(),
                array.ndims()
            )));
        }
        let mut block = Vec::with_capacity(array.ndims());
        for (i, d) in pattern.0.iter().enumerate() {
            let extent = array.0[i];
            let (p, b) = match d {
                Dist::Block(p) => (*p, extent.div_ceil((*p).max(1))),
                Dist::Cyclic(p) => (*p, 1),
                Dist::BlockCyclic { procs, block } => (*procs, *block),
                Dist::Star => (1, extent),
            };
            if p == 0 || b == 0 {
                return Err(DpfsError::InvalidArgument(format!(
                    "distribution {d:?} has zero processors or block"
                )));
            }
            if p > extent {
                return Err(DpfsError::InvalidArgument(format!(
                    "{p} processors over dimension of extent {extent}"
                )));
            }
            block.push(b);
        }
        let grid = pattern.grid();
        // per-dim owned counts; every processor must own >= 1 index
        let mut owned = Vec::with_capacity(array.ndims());
        for (i, &b) in block.iter().enumerate() {
            let d = array.0[i];
            let p = grid.0[i];
            let cycle = p * b;
            let full = d / cycle;
            let rem = d % cycle;
            let mut per_g = Vec::with_capacity(p as usize);
            for g in 0..p {
                let extra = rem.saturating_sub(g * b).min(b);
                let n = full * b + extra;
                if n == 0 {
                    return Err(DpfsError::InvalidArgument(format!(
                        "{:?} over extent {d} leaves processor {g} an empty chunk",
                        self_dist(&grid, i, b)
                    )));
                }
                per_g.push(n);
            }
            owned.push(per_g);
        }
        Ok(ArrayLayout {
            array,
            pattern,
            elem_bytes,
            grid,
            block,
            owned,
        })
    }

    /// The processor-grid shape.
    pub fn grid(&self) -> &Shape {
        &self.grid
    }

    /// Number of chunks (= bricks = processors).
    pub fn num_bricks(&self) -> u64 {
        self.grid.volume()
    }

    /// The local-array shape of chunk `b` (extent each processor owns per
    /// dimension).
    pub fn chunk_local_shape(&self, b: u64) -> Shape {
        let g = self.grid.delinearize(b);
        Shape(
            g.iter()
                .enumerate()
                .map(|(i, &gi)| self.owned[i][gi as usize])
                .collect(),
        )
    }

    /// On-disk bytes of chunk `b`.
    pub fn chunk_len(&self, b: u64) -> u64 {
        self.chunk_local_shape(b).volume() * self.elem_bytes
    }

    /// True when every distributed dimension completes in a single cycle —
    /// i.e. the pattern is pure BLOCK/`*` and chunks are rectangles.
    pub fn chunks_are_rectangular(&self) -> bool {
        (0..self.array.ndims()).all(|i| self.grid.0[i] * self.block[i] >= self.array.0[i])
    }

    /// The rectangular array region of chunk `b`, when the pattern is pure
    /// BLOCK/`*`; `None` for cyclic patterns (no bounding rectangle).
    pub fn chunk_region(&self, b: u64) -> Option<Region> {
        if !self.chunks_are_rectangular() {
            return None;
        }
        let g = self.grid.delinearize(b);
        let origin: Vec<u64> = g.iter().zip(&self.block).map(|(c, bs)| c * bs).collect();
        let extent: Vec<u64> = g
            .iter()
            .enumerate()
            .map(|(i, &gi)| self.owned[i][gi as usize])
            .collect();
        Some(Region { origin, extent })
    }

    /// The chunk id owning `coord`.
    pub fn chunk_of(&self, coord: &[u64]) -> u64 {
        let g: Vec<u64> = coord
            .iter()
            .zip(&self.block)
            .zip(&self.grid.0)
            .map(|((c, bs), p)| (c / bs) % p)
            .collect();
        self.grid.linearize(&g)
    }

    /// Local (chunk-storage) index of global index `x` along `dim`.
    fn local_index(&self, dim: usize, x: u64) -> u64 {
        let b = self.block[dim];
        let cycle = self.grid.0[dim] * b;
        (x / cycle) * b + x % b
    }

    /// Map an element-space `region` to brick runs (user buffer packed
    /// row-major over the region). Works for all HPF patterns: row segments
    /// are split at distribution-block boundaries of the innermost
    /// dimension, each piece landing contiguously in one chunk's local
    /// array.
    pub fn map_region(&self, region: &Region) -> Result<Vec<BrickRun>> {
        if !region.fits_in(&self.array) {
            return Err(DpfsError::InvalidArgument(format!(
                "region {:?}+{:?} outside array {:?}",
                region.origin, region.extent, self.array.0
            )));
        }
        let n = region.ndims();
        let region_shape = Shape(region.extent.clone());
        let region_strides = region_shape.strides();
        let inner_b = self.block[n - 1];
        let mut runs = Vec::new();
        let mut counter = vec![0u64; n - 1];
        loop {
            // fixed outer coordinates for this row
            let mut gcoord: Vec<u64> = region.origin.clone();
            for i in 0..n - 1 {
                gcoord[i] += counter[i];
            }
            // owner grid coords + local indices for the outer dims
            let mut g = vec![0u64; n];
            let mut local = vec![0u64; n];
            for i in 0..n - 1 {
                g[i] = (gcoord[i] / self.block[i]) % self.grid.0[i];
                local[i] = self.local_index(i, gcoord[i]);
            }
            // buffer offset of the row start
            let mut row_buf: u64 = 0;
            for i in 0..n - 1 {
                row_buf += counter[i] * region_strides[i];
            }
            // walk the innermost run, splitting at block boundaries
            let mut x = region.origin[n - 1];
            let row_end = x + region.extent[n - 1];
            while x < row_end {
                let seg_end = row_end.min((x / inner_b + 1) * inner_b);
                g[n - 1] = (x / inner_b) % self.grid.0[n - 1];
                local[n - 1] = self.local_index(n - 1, x);
                let brick = self.grid.linearize(&g);
                let local_shape = self.chunk_local_shape(brick);
                let brick_off = local_shape.linearize(&local) * self.elem_bytes;
                let buf_off = (row_buf + (x - region.origin[n - 1])) * self.elem_bytes;
                runs.push(BrickRun {
                    brick,
                    brick_off,
                    buf_off,
                    len: (seg_end - x) * self.elem_bytes,
                });
                x = seg_end;
            }
            // odometer over outer dims
            let mut i = n - 1;
            loop {
                if i == 0 {
                    runs.sort_by_key(|r| (r.brick, r.brick_off));
                    return Ok(runs);
                }
                i -= 1;
                counter[i] += 1;
                if counter[i] < region.extent[i] {
                    break;
                }
                counter[i] = 0;
            }
        }
    }
}

/// Debug helper for error messages in [`ArrayLayout::new`].
fn self_dist(grid: &Shape, dim: usize, block: u64) -> String {
    format!("p={} b={block} (dim {dim})", grid.0[dim])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(d: &[u64]) -> Shape {
        Shape::new(d.to_vec()).unwrap()
    }

    fn region(o: &[u64], e: &[u64]) -> Region {
        Region::new(o.to_vec(), e.to_vec()).unwrap()
    }

    // ---- linear ----

    #[test]
    fn linear_brick_count() {
        let l = LinearLayout::new(4, 32).unwrap();
        assert_eq!(l.num_bricks(), 8);
        assert_eq!(LinearLayout::new(4, 33).unwrap().num_bricks(), 9);
        assert_eq!(LinearLayout::new(4, 0).unwrap().num_bricks(), 1);
        assert!(LinearLayout::new(0, 8).is_err());
    }

    #[test]
    fn linear_map_within_one_brick() {
        let l = LinearLayout::new(100, 1000).unwrap();
        let runs = l.map_bytes(10, 50, 0);
        assert_eq!(
            runs,
            vec![BrickRun {
                brick: 0,
                brick_off: 10,
                buf_off: 0,
                len: 50
            }]
        );
    }

    #[test]
    fn linear_map_across_bricks() {
        let l = LinearLayout::new(100, 1000).unwrap();
        let runs = l.map_bytes(250, 300, 7);
        assert_eq!(runs.len(), 4);
        assert_eq!(
            runs[0],
            BrickRun {
                brick: 2,
                brick_off: 50,
                buf_off: 7,
                len: 50
            }
        );
        assert_eq!(
            runs[1],
            BrickRun {
                brick: 3,
                brick_off: 0,
                buf_off: 57,
                len: 100
            }
        );
        assert_eq!(
            runs[3],
            BrickRun {
                brick: 5,
                brick_off: 0,
                buf_off: 257,
                len: 50
            }
        );
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 300);
    }

    // ---- multidim ----

    /// The paper's Figure 6: 8x8 array, 2x2 bricks, 16 bricks numbered
    /// row-major over the 4x4 grid.
    fn fig6() -> MultidimLayout {
        MultidimLayout::new(shape(&[8, 8]), shape(&[2, 2]), 1).unwrap()
    }

    #[test]
    fn multidim_grid_and_count() {
        let l = fig6();
        assert_eq!(l.grid(), &shape(&[4, 4]));
        assert_eq!(l.num_bricks(), 16);
        assert_eq!(l.brick_volume_bytes(), 4);
    }

    #[test]
    fn multidim_brick_regions() {
        let l = fig6();
        assert_eq!(l.brick_region(0), region(&[0, 0], &[2, 2]));
        assert_eq!(l.brick_region(3), region(&[0, 6], &[2, 2]));
        assert_eq!(l.brick_region(4), region(&[2, 0], &[2, 2]));
        assert_eq!(l.brick_region(15), region(&[6, 6], &[2, 2]));
    }

    #[test]
    fn paper_fig6_column_access_needs_4_bricks() {
        // "When the processor 0 accesses the first two columns again, it
        // only needs to access 4 bricks (0, 4, 8 and 12)" — §3.2
        let l = fig6();
        let first_two_cols = region(&[0, 0], &[8, 2]);
        let bricks = l.bricks_of_region(&first_two_cols);
        assert_eq!(bricks, vec![0, 4, 8, 12]);
        // and the mapped runs touch exactly those bricks, with no waste
        let runs = l.map_region(&first_two_cols).unwrap();
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 16); // 8x2 elements, 1 byte each — "no extra data"
    }

    #[test]
    fn paper_linear_column_access_needs_8_bricks() {
        // Figure 5: same access with linear striping (brick = 4 elements)
        // touches bricks 0,2,4,6,8,10,12,14 and wastes half of each.
        let l = LinearLayout::new(4, 64).unwrap();
        // col 0..2 of an 8x8 = 8 runs of 2 bytes at offsets 0,8,16,...
        let mut bricks = std::collections::BTreeSet::new();
        let mut useful = 0u64;
        for row in 0..8u64 {
            for r in l.map_bytes(row * 8, 2, 0) {
                bricks.insert(r.brick);
                useful += r.len;
            }
        }
        assert_eq!(
            bricks.into_iter().collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8, 10, 12, 14]
        );
        assert_eq!(useful, 16);
    }

    #[test]
    fn paper_64k_example_brick_counts() {
        // §3.2: a 64K x 64K array, 64K brick: linear needs all 65536 bricks
        // for one column; multidim with 256x256 bricks needs 256.
        let elem = 1u64;
        let md = MultidimLayout::new(shape(&[65536, 65536]), shape(&[256, 256]), elem).unwrap();
        let one_col = region(&[0, 0], &[65536, 1]);
        assert_eq!(md.bricks_of_region(&one_col).len(), 256);

        let lin = LinearLayout::new(65536, 65536 * 65536).unwrap();
        assert_eq!(lin.num_bricks(), 65536);
        // one column touches every row-brick
        // (spot-check rather than 64K iterations)
        let r0 = lin.map_bytes(0, 1, 0);
        let r_last = lin.map_bytes(65535 * 65536, 1, 0);
        assert_eq!(r0[0].brick, 0);
        assert_eq!(r_last[0].brick, 65535);
    }

    #[test]
    fn multidim_row_access_maps_contiguously() {
        let l = fig6();
        // rows 0..2 = bricks 0..4, full tiles
        let r = region(&[0, 0], &[2, 8]);
        let runs = l.map_region(&r).unwrap();
        let bricks: std::collections::BTreeSet<u64> = runs.iter().map(|r| r.brick).collect();
        assert_eq!(bricks.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn multidim_rejects_out_of_bounds() {
        let l = fig6();
        assert!(l.map_region(&region(&[7, 7], &[2, 2])).is_err());
    }

    #[test]
    fn multidim_edge_padding() {
        // 5x5 array, 2x2 bricks -> 3x3 grid; edge bricks clipped in region
        // but full-size on disk
        let l = MultidimLayout::new(shape(&[5, 5]), shape(&[2, 2]), 4).unwrap();
        assert_eq!(l.num_bricks(), 9);
        assert_eq!(l.brick_region(8), region(&[4, 4], &[1, 1]));
        assert_eq!(l.brick_volume_bytes(), 16);
        let runs = l.map_region(&region(&[4, 4], &[1, 1])).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].brick, 8);
        assert_eq!(runs[0].brick_off, 0);
        assert_eq!(runs[0].len, 4);
    }

    #[test]
    fn multidim_buffer_offsets_pack_region_row_major() {
        let l = fig6();
        // 2x2 region straddling 4 bricks: (1..3, 1..3)
        let r = region(&[1, 1], &[2, 2]);
        let mut runs = l.map_region(&r).unwrap();
        runs.sort_by_key(|r| r.buf_off);
        // buffer: [ (1,1), (1,2), (2,1), (2,2) ]
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].brick, 0); // (1,1) in brick 0 at tile pos (1,1)=3
        assert_eq!(runs[0].brick_off, 3);
        assert_eq!(runs[0].buf_off, 0);
        assert_eq!(runs[1].brick, 1); // (1,2) in brick 1 at tile pos (1,0)=2
        assert_eq!(runs[1].brick_off, 2);
        assert_eq!(runs[1].buf_off, 1);
        assert_eq!(runs[2].brick, 4); // (2,1) in brick 4 at tile pos (0,1)=1
        assert_eq!(runs[2].brick_off, 1);
        assert_eq!(runs[2].buf_off, 2);
        assert_eq!(runs[3].brick, 5); // (2,2) in brick 5 at tile pos (0,0)=0
        assert_eq!(runs[3].brick_off, 0);
        assert_eq!(runs[3].buf_off, 3);
    }

    // ---- array ----

    #[test]
    fn array_block_block_chunks() {
        // Figure 7: 2-d array, 4 processors, (BLOCK, BLOCK) on a 2x2 grid
        let l = ArrayLayout::new(shape(&[8, 8]), HpfPattern::block_block(2, 2), 1).unwrap();
        assert_eq!(l.num_bricks(), 4);
        assert_eq!(l.chunk_region(0), Some(region(&[0, 0], &[4, 4])));
        assert_eq!(l.chunk_region(1), Some(region(&[0, 4], &[4, 4])));
        assert_eq!(l.chunk_region(2), Some(region(&[4, 0], &[4, 4])));
        assert_eq!(l.chunk_region(3), Some(region(&[4, 4], &[4, 4])));
        assert_eq!(l.chunk_len(0), 16);
    }

    #[test]
    fn array_star_block_chunks_are_column_bands() {
        let l = ArrayLayout::new(shape(&[8, 8]), HpfPattern::star_block(4, 2), 1).unwrap();
        assert_eq!(l.num_bricks(), 4);
        assert_eq!(l.chunk_region(0), Some(region(&[0, 0], &[8, 2])));
        assert_eq!(l.chunk_region(3), Some(region(&[0, 6], &[8, 2])));
    }

    #[test]
    fn array_whole_chunk_access_is_one_brick_contiguous() {
        // The checkpoint scenario: a processor reads back exactly its chunk;
        // that's a single brick, and the runs are one contiguous stretch.
        let l = ArrayLayout::new(shape(&[8, 8]), HpfPattern::block_block(2, 2), 4).unwrap();
        let runs = l.map_region(&l.chunk_region(2).unwrap()).unwrap();
        assert!(runs.iter().all(|r| r.brick == 2));
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 16 * 4);
        // runs tile the chunk storage in order
        let mut sorted = runs.clone();
        sorted.sort_by_key(|r| r.brick_off);
        let mut expect = 0;
        for r in &sorted {
            assert_eq!(r.brick_off, expect);
            expect += r.len;
        }
    }

    #[test]
    fn array_cross_chunk_region() {
        let l = ArrayLayout::new(shape(&[8, 8]), HpfPattern::block_block(2, 2), 1).unwrap();
        // center 4x4 straddles all four chunks
        let runs = l.map_region(&region(&[2, 2], &[4, 4])).unwrap();
        let bricks: std::collections::BTreeSet<u64> = runs.iter().map(|r| r.brick).collect();
        assert_eq!(bricks.len(), 4);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn array_uneven_blocks() {
        // 10 rows over 4 procs (BLOCK) -> block 3: chunks 3,3,3,1
        let l = ArrayLayout::new(shape(&[10, 4]), HpfPattern::block_star(4, 2), 1).unwrap();
        assert_eq!(l.chunk_region(0).unwrap().extent, vec![3, 4]);
        assert_eq!(l.chunk_region(3).unwrap().extent, vec![1, 4]);
        assert_eq!(l.chunk_len(3), 4);
        // total chunk bytes = array bytes
        let total: u64 = (0..4).map(|b| l.chunk_len(b)).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn array_rejects_bad_patterns() {
        assert!(ArrayLayout::new(shape(&[4, 4]), HpfPattern::block_star(8, 2), 1).is_err());
        assert!(ArrayLayout::new(shape(&[4, 4]), HpfPattern::block_star(2, 3), 1).is_err());
        // ceil-block degeneracy: 6 rows over 4 procs -> blocks of 2 ->
        // processor 3 would own nothing
        assert!(ArrayLayout::new(shape(&[6, 1]), HpfPattern::block_star(4, 2), 1).is_err());
        // but 6 over 3 is fine
        assert!(ArrayLayout::new(shape(&[6, 1]), HpfPattern::block_star(3, 2), 1).is_ok());
    }

    #[test]
    fn cyclic_chunks_deal_rows_round_robin() {
        // (CYCLIC, *) over 3 procs of a 7x4 array: proc 0 owns rows
        // 0,3,6 (3 rows); procs 1,2 own 2 rows each.
        let l = ArrayLayout::new(shape(&[7, 4]), HpfPattern::cyclic_star(3, 2), 1).unwrap();
        assert_eq!(l.num_bricks(), 3);
        assert_eq!(l.chunk_len(0), 12);
        assert_eq!(l.chunk_len(1), 8);
        assert_eq!(l.chunk_len(2), 8);
        assert!(!l.chunks_are_rectangular());
        assert_eq!(l.chunk_region(0), None);
        // ownership: row r belongs to proc r % 3
        for r in 0..7u64 {
            assert_eq!(l.chunk_of(&[r, 0]), r % 3);
        }
        // total chunk bytes = array bytes
        let total: u64 = (0..3).map(|b| l.chunk_len(b)).sum();
        assert_eq!(total, 28);
    }

    #[test]
    fn cyclic_map_region_local_storage_order() {
        // 6x2 array, (CYCLIC, *) over 2 procs, 1 byte elems.
        // proc 0 local array = rows 0,2,4 ; proc 1 = rows 1,3,5.
        let l = ArrayLayout::new(shape(&[6, 2]), HpfPattern::cyclic_star(2, 2), 1).unwrap();
        // read rows 1..4 (global rows 1,2,3)
        let r = region(&[1, 0], &[3, 2]);
        let mut runs = l.map_region(&r).unwrap();
        runs.sort_by_key(|x| x.buf_off);
        assert_eq!(runs.len(), 3);
        // row 1 -> brick 1, local row 0 -> brick_off 0
        assert_eq!((runs[0].brick, runs[0].brick_off, runs[0].len), (1, 0, 2));
        // row 2 -> brick 0, local row 1 -> brick_off 2
        assert_eq!((runs[1].brick, runs[1].brick_off, runs[1].len), (0, 2, 2));
        // row 3 -> brick 1, local row 1 -> brick_off 2
        assert_eq!((runs[2].brick, runs[2].brick_off, runs[2].len), (1, 2, 2));
    }

    #[test]
    fn block_cyclic_inner_dim_splits_runs() {
        // 1-d-ish: 1x12 array, (*, CYCLIC(2)) over 3 procs: blocks of 2
        // columns deal to procs 0,1,2,0,1,2.
        let l = ArrayLayout::new(
            shape(&[1, 12]),
            HpfPattern(vec![Dist::Star, Dist::BlockCyclic { procs: 3, block: 2 }]),
            1,
        )
        .unwrap();
        assert_eq!(l.num_bricks(), 3);
        assert_eq!(l.chunk_len(0), 4);
        // read the whole row: 6 runs of 2, alternating bricks
        let runs = l.map_region(&region(&[0, 0], &[1, 12])).unwrap();
        assert_eq!(runs.len(), 6);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 12);
        // brick 0 receives global cols 0,1 (local 0,1) and 6,7 (local 2,3)
        let b0: Vec<_> = runs.iter().filter(|r| r.brick == 0).collect();
        assert_eq!(b0.len(), 2);
        assert_eq!((b0[0].brick_off, b0[0].buf_off), (0, 0));
        assert_eq!((b0[1].brick_off, b0[1].buf_off), (2, 6));
    }

    #[test]
    fn cyclic_round_trip_coverage() {
        // every element of a (CYCLIC, CYCLIC(2)) array maps exactly once
        let l = ArrayLayout::new(
            shape(&[5, 9]),
            HpfPattern(vec![
                Dist::Cyclic(2),
                Dist::BlockCyclic { procs: 2, block: 2 },
            ]),
            1,
        )
        .unwrap();
        let runs = l.map_region(&shape(&[5, 9]).full_region()).unwrap();
        let mut disk = std::collections::HashSet::new();
        let mut buf = [false; 45];
        for r in &runs {
            for i in 0..r.len {
                assert!(disk.insert((r.brick, r.brick_off + i)));
                assert!(!buf[(r.buf_off + i) as usize]);
                buf[(r.buf_off + i) as usize] = true;
            }
        }
        assert!(buf.iter().all(|&x| x));
        // disk bytes touched = sum of chunk lens
        let total: u64 = (0..l.num_bricks()).map(|b| l.chunk_len(b)).sum();
        assert_eq!(disk.len() as u64, total);
    }

    #[test]
    fn cyclic_rejects_too_many_procs() {
        assert!(ArrayLayout::new(shape(&[3, 4]), HpfPattern::cyclic_star(4, 2), 1).is_err());
    }

    #[test]
    fn chunk_of_matches_chunk_region() {
        let l = ArrayLayout::new(shape(&[10, 10]), HpfPattern::block_block(3, 2), 1).unwrap();
        for b in 0..l.num_bricks() {
            let r = l.chunk_region(b).unwrap();
            assert_eq!(l.chunk_of(&r.origin), b);
        }
    }

    // ---- layout facade ----

    #[test]
    fn facade_dispatch() {
        let lin = Layout::from_striping(&Striping::Linear {
            brick_bytes: 16,
            file_bytes: 64,
        })
        .unwrap();
        assert_eq!(lin.level(), FileLevel::Linear);
        assert_eq!(lin.num_bricks(), 4);
        assert_eq!(lin.brick_len(0), 16);
        assert_eq!(lin.file_bytes(), 64);

        let md = Layout::from_striping(&Striping::Multidim {
            array: shape(&[8, 8]),
            brick: shape(&[2, 2]),
            elem_bytes: 4,
        })
        .unwrap();
        assert_eq!(md.level(), FileLevel::Multidim);
        assert_eq!(md.num_bricks(), 16);
        assert_eq!(md.brick_len(0), 16);
        assert_eq!(md.file_bytes(), 256);

        let ar = Layout::from_striping(&Striping::Array {
            array: shape(&[8, 8]),
            pattern: HpfPattern::block_block(2, 2),
            elem_bytes: 1,
        })
        .unwrap();
        assert_eq!(ar.level(), FileLevel::Array);
        assert_eq!(ar.num_bricks(), 4);
        assert_eq!(ar.file_bytes(), 64);
    }
}
