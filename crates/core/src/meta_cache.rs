//! Client-side metadata cache: generation-stamped attrs and layouts.
//!
//! A networked metadata service turns every open/stat into a round trip
//! (paper §5's database server). [`CachingMetaStore`] wraps a
//! [`RemoteMetaStore`] and absorbs repeat lookups under the cheapest
//! protocol that can never serve a stale layout for I/O:
//!
//! - Every cached attr row and distribution is stamped with the *shard*
//!   it was fetched from and that shard's *generation* carried on the
//!   reply. Generations are per shard: each daemon owns an independent
//!   counter, so validation is per shard too — a mutation on shard B
//!   never invalidates (or evicts) entries fetched from shard A.
//! - The **layout path** ([`MetaStore::get_file_attr`],
//!   [`MetaStore::get_distribution`] — what `open` uses to aim I/O)
//!   revalidates on every lookup with one tiny `Generation` RPC *to the
//!   entry's home shard*: if that shard's generation still equals the
//!   entry's stamp, the cached value is provably current (any mutation
//!   of that shard's slice would have bumped it); a generation that
//!   moved since the last validation drops that shard's entries and
//!   refetches, while a plain miss under an unchanged generation just
//!   fetches and inserts (other entries stay hot). The round trip
//!   remains, but it carries ~16 bytes instead of attr + distribution
//!   rows, and a `stat`+`open` pair touches the daemon once, not thrice.
//! - The **stat path** ([`MetaStore::stat_file_attr`] — `ls`, `exists`,
//!   size probes) may serve a cached row within a configurable TTL with
//!   *no* RPC at all. Stat output may therefore lag mutations by up to
//!   the TTL — the classic NFS-style attribute-cache tradeoff — which is
//!   why layout decisions never use this path.
//! - The store's **own mutations** invalidate the shards they touched on
//!   success (the reply proves those shards' generations moved past
//!   every stamp from them): file ops drop their home shard, a
//!   cross-shard rename drops both ends, and broadcast ops (`mkdir`,
//!   `rmdir`, server registry) drop everything.
//!
//! Hits and misses are counted here and mirrored into the metadata
//! server's [`crate::transport::TransportStats`], so `dpfs-sh stats` and
//! the bench harness can report cache effectiveness per mount.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpfs_meta::{
    Catalog, DirEntry, Distribution, FileAttrRow, MetaStore, Result as MetaResultT, ServerInfo,
};
use parking_lot::Mutex;

use crate::remote_meta::RemoteMetaStore;

/// A value plus the shard it came from, that shard's generation at fetch
/// time, and the wall-clock instant it was fetched at.
struct Stamped<T> {
    shard: usize,
    gen: u64,
    fetched: Instant,
    value: T,
}

/// A generation-validated, TTL-assisted cache over a [`RemoteMetaStore`].
pub struct CachingMetaStore {
    remote: Arc<RemoteMetaStore>,
    /// How long [`MetaStore::stat_file_attr`] may serve an entry without
    /// revalidating. Zero disables the TTL fast path (every lookup still
    /// benefits from generation validation).
    ttl: Duration,
    /// Attr rows by filename. `None` is a *negative* entry: the daemon
    /// answered "no such file" at that generation, and repeating the
    /// probe under an unchanged generation can skip the RPC — the
    /// stat-heavy `exists?` pattern FalconFS optimizes for.
    attrs: Mutex<HashMap<String, Stamped<Option<FileAttrRow>>>>,
    dists: Mutex<HashMap<String, Stamped<Vec<Distribution>>>>,
    /// Per shard: the highest generation the cache has been validated
    /// against. Lookups only drop a shard's entries when that shard's
    /// observed generation moves past its mark — a miss for a
    /// simply-absent entry leaves the rest intact, and shard B moving
    /// never touches shard A's entries.
    validated_gens: Vec<AtomicU64>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CachingMetaStore {
    /// Wrap `remote`, serving stat-path reads from cache for up to `ttl`.
    pub fn new(remote: Arc<RemoteMetaStore>, ttl: Duration) -> CachingMetaStore {
        let shards = remote.shard_count();
        CachingMetaStore {
            remote,
            ttl,
            attrs: Mutex::new(HashMap::new()),
            dists: Mutex::new(HashMap::new()),
            validated_gens: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped remote store.
    pub fn remote(&self) -> &Arc<RemoteMetaStore> {
        &self.remote
    }

    /// `(hits, misses)` across both the attr and distribution caches.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drop every cached entry (caller request, or a broadcast mutation
    /// that touched every shard).
    pub fn invalidate_all(&self) {
        self.attrs.lock().clear();
        self.dists.lock().clear();
    }

    /// Drop only the entries fetched from `shard`. Entries from other
    /// shards stay hot — their daemons' generations didn't move.
    pub fn invalidate_shard(&self, shard: usize) {
        self.attrs.lock().retain(|_, e| e.shard != shard);
        self.dists.lock().retain(|_, e| e.shard != shard);
    }

    fn note_hit(&self, shard: usize) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.remote
            .pool()
            .note_meta_cache_hit(self.remote.shard_server(shard));
    }

    fn note_miss(&self, shard: usize) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.remote
            .pool()
            .note_meta_cache_miss(self.remote.shard_server(shard));
    }

    /// Every shard id (for broadcast mutations).
    fn all_shards(&self) -> Vec<usize> {
        (0..self.remote.shard_count()).collect()
    }

    /// Run a mutation through the remote store; on success the touched
    /// shards' generations have provably moved past every stamp from
    /// them, so drop exactly those shards' entries — and nothing else.
    fn mutate<T>(&self, shards: &[usize], r: MetaResultT<T>) -> MetaResultT<T> {
        if r.is_ok() {
            for &shard in shards {
                self.invalidate_shard(shard);
                // The mutation's reply gen is proven current; recording
                // it keeps the next lookup from wiping entries cached
                // after it.
                self.validated_gens[shard]
                    .fetch_max(self.remote.last_gen_of(shard), Ordering::AcqRel);
            }
        }
        r
    }

    /// One `Generation` RPC to `shard`, returning its current generation.
    /// If it moved since the last validation, every older-stamped entry
    /// *from that shard* is suspect (some mutation of its slice
    /// happened), so that shard's entries are dropped; other shards'
    /// entries — and the shard's own entries under an unchanged
    /// generation — stay. Correctness never rests on the drop — each
    /// lookup still compares its entry's stamp against the returned
    /// generation — it only bounds how long suspect entries linger.
    fn validate_generation(&self, shard: usize) -> MetaResultT<u64> {
        let current = self.remote.generation_of(shard)?;
        let prev = self.validated_gens[shard].fetch_max(current, Ordering::AcqRel);
        if current > prev {
            self.invalidate_shard(shard);
        }
        Ok(current)
    }

    /// Attr lookup. `allow_ttl` is the stat path: an entry younger than
    /// the TTL is served with no RPC. Otherwise (and for stat entries past
    /// their TTL) the entry's generation stamp is revalidated with one
    /// `Generation` RPC; a stale stamp refetches and restamps. Negative
    /// answers (file absent) are cached under exactly the same protocol:
    /// the reply's generation stamps the absence, so serving it later is
    /// as provably current as serving a row — any create anywhere would
    /// have bumped the generation past the stamp.
    fn lookup_attr(&self, filename: &str, allow_ttl: bool) -> MetaResultT<Option<FileAttrRow>> {
        let shard = self.remote.route_file(filename);
        if allow_ttl && !self.ttl.is_zero() {
            if let Some(e) = self.attrs.lock().get(filename) {
                if e.fetched.elapsed() <= self.ttl {
                    self.note_hit(shard);
                    return Ok(e.value.clone());
                }
            }
        }
        let current = self.validate_generation(shard)?;
        {
            let mut attrs = self.attrs.lock();
            if let Some(e) = attrs.get_mut(filename) {
                if e.gen == current {
                    e.fetched = Instant::now();
                    self.note_hit(shard);
                    return Ok(e.value.clone());
                }
            }
        }
        self.note_miss(shard);
        let (gen, attr) = self.remote.get_file_attr_with_gen(filename)?;
        self.attrs.lock().insert(
            filename.to_string(),
            Stamped {
                shard,
                gen,
                fetched: Instant::now(),
                value: attr.clone(),
            },
        );
        Ok(attr)
    }
}

impl MetaStore for CachingMetaStore {
    // ---- reads the cache can absorb ----

    fn get_file_attr(&self, filename: &str) -> MetaResultT<Option<FileAttrRow>> {
        self.lookup_attr(filename, false)
    }

    fn stat_file_attr(&self, filename: &str) -> MetaResultT<Option<FileAttrRow>> {
        self.lookup_attr(filename, true)
    }

    fn get_distribution(&self, filename: &str) -> MetaResultT<Vec<Distribution>> {
        let shard = self.remote.route_file(filename);
        let current = self.validate_generation(shard)?;
        {
            let mut dists = self.dists.lock();
            if let Some(e) = dists.get_mut(filename) {
                if e.gen == current {
                    e.fetched = Instant::now();
                    self.note_hit(shard);
                    return Ok(e.value.clone());
                }
            }
        }
        self.note_miss(shard);
        let (gen, ds) = self.remote.get_distribution_with_gen(filename)?;
        // An empty distribution (absent file) is cached too — the
        // generation stamp makes the negative answer exactly as
        // revalidatable as a positive one.
        self.dists.lock().insert(
            filename.to_string(),
            Stamped {
                shard,
                gen,
                fetched: Instant::now(),
                value: ds.clone(),
            },
        );
        Ok(ds)
    }

    // ---- uncached reads (rare, or cheap server-side) ----

    fn list_servers(&self) -> MetaResultT<Vec<ServerInfo>> {
        self.remote.list_servers()
    }
    fn get_server(&self, name: &str) -> MetaResultT<Option<ServerInfo>> {
        self.remote.get_server(name)
    }
    fn get_dir(&self, path: &str) -> MetaResultT<Option<DirEntry>> {
        self.remote.get_dir(path)
    }
    fn get_tag(&self, filename: &str, tag: &str) -> MetaResultT<Option<String>> {
        self.remote.get_tag(filename, tag)
    }
    fn list_tags(&self, filename: &str) -> MetaResultT<Vec<(String, String)>> {
        self.remote.list_tags(filename)
    }
    fn find_by_tag(&self, tag: &str, pattern: &str) -> MetaResultT<Vec<(String, String, i64)>> {
        self.remote.find_by_tag(tag, pattern)
    }
    fn server_brick_counts(&self) -> MetaResultT<Vec<(String, i64)>> {
        self.remote.server_brick_counts()
    }
    fn generation(&self) -> MetaResultT<u64> {
        self.remote.generation()
    }

    // ---- mutations: forward, then drop the shards they touched ----

    fn register_server(&self, info: &ServerInfo) -> MetaResultT<()> {
        // Registry writes broadcast to every shard.
        self.mutate(&self.all_shards(), self.remote.register_server(info))
    }
    fn remove_server(&self, name: &str) -> MetaResultT<bool> {
        self.mutate(&self.all_shards(), self.remote.remove_server(name))
    }
    fn create_file(&self, attr: &FileAttrRow, dist: &[Distribution]) -> MetaResultT<()> {
        self.mutate(
            &[self.remote.route_file(&attr.filename)],
            self.remote.create_file(attr, dist),
        )
    }
    fn delete_file(&self, filename: &str) -> MetaResultT<Vec<Distribution>> {
        self.mutate(
            &[self.remote.route_file(filename)],
            self.remote.delete_file(filename),
        )
    }
    fn rename_file(&self, from: &str, to: &str) -> MetaResultT<()> {
        // A cross-shard rename mutates both ends; same-shard dedups to one.
        self.mutate(
            &[self.remote.route_file(from), self.remote.route_file(to)],
            self.remote.rename_file(from, to),
        )
    }
    fn set_file_size(&self, filename: &str, size: i64) -> MetaResultT<()> {
        self.mutate(
            &[self.remote.route_file(filename)],
            self.remote.set_file_size(filename, size),
        )
    }
    fn set_file_permission(&self, filename: &str, permission: i64) -> MetaResultT<()> {
        self.mutate(
            &[self.remote.route_file(filename)],
            self.remote.set_file_permission(filename, permission),
        )
    }
    fn set_file_owner(&self, filename: &str, owner: &str) -> MetaResultT<()> {
        self.mutate(
            &[self.remote.route_file(filename)],
            self.remote.set_file_owner(filename, owner),
        )
    }
    fn update_distribution(&self, filename: &str, dist: &[Distribution]) -> MetaResultT<()> {
        self.mutate(
            &[self.remote.route_file(filename)],
            self.remote.update_distribution(filename, dist),
        )
    }
    fn mkdir(&self, path: &str) -> MetaResultT<()> {
        // Directory skeletons replicate to every shard.
        self.mutate(&self.all_shards(), self.remote.mkdir(path))
    }
    fn rmdir(&self, path: &str) -> MetaResultT<()> {
        self.mutate(&self.all_shards(), self.remote.rmdir(path))
    }
    fn set_tag(&self, filename: &str, tag: &str, value: &str) -> MetaResultT<()> {
        self.mutate(
            &[self.remote.route_file(filename)],
            self.remote.set_tag(filename, tag, value),
        )
    }
    fn remove_tag(&self, filename: &str, tag: &str) -> MetaResultT<bool> {
        self.mutate(
            &[self.remote.route_file(filename)],
            self.remote.remove_tag(filename, tag),
        )
    }

    fn as_catalog(&self) -> Option<&Catalog> {
        None
    }
}
