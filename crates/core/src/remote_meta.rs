//! `MetaStore` over the wire: the client half of the metadata service.
//!
//! The paper's clients send every metadata query "to the database server"
//! over the network (§5). [`RemoteMetaStore`] is that path: each
//! `MetaStore` call becomes one [`MetaOp`] RPC to a `dpfs-metad` daemon,
//! carried by the same multiplexed [`ConnPool`] transport as data traffic
//! — so metadata inherits correlation IDs, per-request deadlines, the
//! retry error-class matrix, and tracing unchanged.
//!
//! # Sharding
//!
//! The metadata plane may be partitioned across N daemons behind a
//! [`ShardMap`] (hash-of-parent-directory → shard). This store holds one
//! retrying connection per shard and routes each op:
//!
//! - file ops go to the file's home shard (`shard_of_file`),
//! - directory reads go to the directory's home shard (`shard_of_dir`),
//! - `mkdir`/`rmdir` broadcast so every shard can enforce "parent must
//!   exist" locally (home shard first — it serializes racing creates and
//!   owns the emptiness check; replicas treat duplicate/missing as
//!   idempotent success),
//! - the server registry is replicated to every shard (broadcast writes,
//!   round-robin reads),
//! - `find_by_tag` / `server_brick_counts` fan out and merge,
//! - a rename whose source and destination live on different shards runs
//!   the two-phase intent protocol (see [`RemoteMetaStore::rename_file`]).
//!
//! Every reply's envelope carries `(shard, generation)`; the store tracks
//! a per-shard generation high-water mark, republished via
//! [`RemoteMetaStore::last_gen_of`] for the caching layer
//! ([`crate::meta_cache`]), which revalidates each shard independently.
//!
//! Errors: server-side `MetaError`s travel as wire codes and reconstruct
//! into the exact variant ([`dpfs_meta::MetaError::from_wire`]), so
//! callers' error mapping (duplicate key → file exists, ...) works
//! identically for embedded and remote mounts. Transport failures
//! (connect, timeout, disconnect — after the pool's retries) surface as
//! [`dpfs_meta::MetaError::Remote`].
//!
//! Retries: read ops replay under the full PR-4 error-class matrix, but
//! mutations are not idempotent — a replayed `CreateFile`/`RenameFile`
//! whose first attempt actually committed answers `DuplicateKey`/
//! `NoSuchTable` even though the op succeeded — so they are reissued
//! only after *connect* failures, the one class where the request
//! provably never left this client. A timeout or disconnect on a
//! mutation surfaces as `MetaError::Remote` (outcome unknown) instead
//! of being replayed into a spurious application error.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use dpfs_meta::catalog::RENAME_INTENT_TAG;
use dpfs_meta::{
    DirEntry, Distribution, FileAttrRow, MetaError, MetaStore, Result as MetaResultT, ServerInfo,
    ShardMap,
};
use dpfs_proto::{MetaOp, MetaResult, Request, Response};

use crate::conn::ConnPool;
use crate::error::DpfsError;
use crate::retry::RetryPolicy;
use crate::trace;

/// A [`MetaStore`] backed by metadata RPCs to one or more `dpfs-metad`
/// shards.
pub struct RemoteMetaStore {
    pool: Arc<ConnPool>,
    /// Per-shard daemon server names (dial strings or testbed aliases),
    /// indexed by shard id.
    shards: Vec<String>,
    /// Routing map over `shards.len()` shards.
    map: ShardMap,
    /// Per-shard highest generation seen on any reply envelope.
    last_gens: Vec<AtomicU64>,
    /// Round-robin cursor for replicated-registry reads.
    rr: AtomicUsize,
    /// Trace ID of the most recent metadata RPC (tests and diagnostics).
    last_trace_id: AtomicU64,
}

impl RemoteMetaStore {
    /// A single-shard store speaking to the daemon registered as `server`
    /// in `pool`'s resolver.
    pub fn new(pool: Arc<ConnPool>, server: impl Into<String>) -> RemoteMetaStore {
        Self::new_sharded(pool, vec![server.into()])
    }

    /// A store routing across `servers`, where `servers[i]` is the daemon
    /// serving shard `i`. The order must match the daemons' `--shard` ids.
    pub fn new_sharded(pool: Arc<ConnPool>, servers: Vec<String>) -> RemoteMetaStore {
        assert!(!servers.is_empty(), "at least one metad shard required");
        let n = servers.len();
        RemoteMetaStore {
            pool,
            shards: servers,
            map: ShardMap::new(n as u32),
            last_gens: (0..n).map(|_| AtomicU64::new(0)).collect(),
            rr: AtomicUsize::new(0),
            last_trace_id: AtomicU64::new(0),
        }
    }

    /// The shard-0 daemon's server name (single-shard compatibility).
    pub fn server(&self) -> &str {
        &self.shards[0]
    }

    /// The daemon serving shard `i`.
    pub fn shard_server(&self, shard: usize) -> &str {
        &self.shards[shard]
    }

    /// All shard daemon names, indexed by shard id.
    pub fn shard_servers(&self) -> &[String] {
        &self.shards
    }

    /// Number of metadata shards this store routes across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The routing map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard owning file `path` (the home shard of its parent dir).
    pub fn route_file(&self, path: &str) -> usize {
        self.map.shard_of_file(path) as usize
    }

    /// The shard owning directory `path` (its file list lives there).
    pub fn route_dir(&self, path: &str) -> usize {
        self.map.shard_of_dir(path) as usize
    }

    /// The connection pool metadata RPCs ride on.
    pub fn pool(&self) -> &Arc<ConnPool> {
        &self.pool
    }

    /// Sum of the per-shard generation high-water marks (0 before the
    /// first RPC). Monotonic per store; any mutation anywhere moves it.
    pub fn last_gen(&self) -> u64 {
        self.last_gens
            .iter()
            .map(|g| g.load(Ordering::Relaxed))
            .sum()
    }

    /// Highest generation observed on any reply from shard `shard`.
    pub fn last_gen_of(&self, shard: usize) -> u64 {
        self.last_gens[shard].load(Ordering::Relaxed)
    }

    /// Trace ID stamped on the most recent metadata RPC. Filter
    /// [`trace::ring()`] events on it to see the RPC's client span and the
    /// daemon-side decode/queue/handle/respond events.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id.load(Ordering::Relaxed)
    }

    /// Fetch shard `shard`'s map view `(version, shards)` — used at mount
    /// time to cross-check the client topology against the daemons.
    pub fn fetch_shard_map(&self, shard: usize) -> MetaResultT<(u64, u32)> {
        match self.call(shard, MetaOp::GetShardMap)? {
            (_, MetaResult::ShardMap { version, shards }) => Ok((version, shards)),
            (_, other) => Err(self.shape(shard, &other)),
        }
    }

    /// Issue one metadata op to `shard` and return `(generation, result)`.
    /// The result is never the `Err` variant — remote errors are
    /// reconstructed into `MetaError` here. Transient transport failures
    /// are retried under the pool's policy, each retry traced like any
    /// other RPC; mutating ops retry only the connect class (see
    /// [`mutation_retryable`]).
    fn call(&self, shard: usize, op: MetaOp) -> Result<(u64, MetaResult), MetaError> {
        let server = &self.shards[shard];
        let trace_id = trace::sampled_trace_id();
        self.last_trace_id.store(trace_id, Ordering::Relaxed);
        let retryable: fn(&DpfsError) -> bool = if op.is_mutation() {
            mutation_retryable
        } else {
            RetryPolicy::retryable
        };
        let req = Request::Meta { op };
        let timeout = self.pool.rpc_timeout();
        let first = self
            .pool
            .submit_traced(server, &req, trace_id)
            .and_then(|p| p.wait(timeout));
        let policy = self.pool.retry_policy();
        let resp = match first {
            Err(err) if policy.enabled() && retryable(&err) => self
                .pool
                .retry_after_if(server, &req, trace_id, err, policy, retryable),
            other => other,
        }
        .map_err(|e| remote_err(server, &e))?;
        match resp {
            Response::Meta {
                shard: reply_shard,
                gen,
                result,
            } => {
                if reply_shard as usize != shard {
                    // Misconfigured topology: the daemon at this address
                    // serves a different namespace slice than we route to
                    // it. Caching its answers would corrupt the mount.
                    return Err(MetaError::Remote(format!(
                        "metadata server {server} answered as shard {reply_shard}, \
                         but this mount routes shard {shard} to it \
                         (check the --metad flag order against the daemons' --shard ids)"
                    )));
                }
                self.last_gens[shard].fetch_max(gen, Ordering::Relaxed);
                match result {
                    MetaResult::Err { code, message } => Err(MetaError::from_wire(code, message)),
                    ok => Ok((gen, ok)),
                }
            }
            Response::Error { code, message } => Err(MetaError::Remote(format!(
                "metadata server {server} rejected the request ({code:?}): {message}"
            ))),
            other => Err(shape_err(server, &format!("{other:?}"))),
        }
    }

    fn shape(&self, shard: usize, got: &MetaResult) -> MetaError {
        shape_err(&self.shards[shard], &format!("{got:?}"))
    }

    /// A round-robin shard for replicated-registry reads (`list_servers`,
    /// `get_server`): every shard holds the full registry, and rotating
    /// spreads the per-create `list_servers` load instead of hammering
    /// shard 0.
    fn registry_shard(&self) -> usize {
        self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Run a mutating op on every shard, home shard first. `tolerate`
    /// classifies replica errors that mean "already in the desired state"
    /// (duplicate directory on a replica mkdir, missing directory on a
    /// replica rmdir) — those count as success everywhere but home.
    fn broadcast(
        &self,
        home: usize,
        op: impl Fn() -> MetaOp,
        tolerate: impl Fn(&MetaError) -> bool,
    ) -> MetaResultT<()> {
        match self.call(home, op())? {
            (_, MetaResult::Unit) => {}
            (_, other) => return Err(self.shape(home, &other)),
        }
        for shard in 0..self.shards.len() {
            if shard == home {
                continue;
            }
            match self.call(shard, op()) {
                Ok((_, MetaResult::Unit)) => {}
                Ok((_, other)) => return Err(self.shape(shard, &other)),
                Err(e) if tolerate(&e) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// [`MetaStore::get_file_attr`] plus the generation the reply was
    /// stamped with (the caching layer stamps entries with it).
    pub(crate) fn get_file_attr_with_gen(
        &self,
        filename: &str,
    ) -> Result<(u64, Option<FileAttrRow>), MetaError> {
        let shard = self.route_file(filename);
        match self.call(
            shard,
            MetaOp::GetFileAttr {
                filename: filename.to_string(),
            },
        )? {
            (gen, MetaResult::MaybeAttr(a)) => Ok((gen, a)),
            (_, other) => Err(self.shape(shard, &other)),
        }
    }

    /// [`MetaStore::get_distribution`] plus the reply's generation.
    pub(crate) fn get_distribution_with_gen(
        &self,
        filename: &str,
    ) -> Result<(u64, Vec<Distribution>), MetaError> {
        let shard = self.route_file(filename);
        match self.call(
            shard,
            MetaOp::GetDistribution {
                filename: filename.to_string(),
            },
        )? {
            (gen, MetaResult::Distributions(ds)) => Ok((gen, ds)),
            (_, other) => Err(self.shape(shard, &other)),
        }
    }

    /// Shard `shard`'s current generation (cheap revalidation RPC).
    pub(crate) fn generation_of(&self, shard: usize) -> MetaResultT<u64> {
        match self.call(shard, MetaOp::Generation)? {
            (gen, MetaResult::Unit) => Ok(gen),
            (_, other) => Err(self.shape(shard, &other)),
        }
    }

    /// Rename across shards: the two-phase intent protocol.
    ///
    /// ```text
    /// source shard              destination shard
    /// ------------              -----------------
    /// RenamePrepare ──────────▶ (intent recorded, snapshot returned)
    ///                           RenameCommit  ◀── entry created under the
    ///                                             new name + marker tag
    ///                                             (COMMIT POINT)
    /// RenameFinish  ──────────▶ (source entry + intent deleted)
    ///                           RemoveTag     ◀── marker stripped
    /// ```
    ///
    /// Between commit and finish the entry is transiently visible at
    /// *both* paths — never at neither. If the commit's outcome is
    /// unknown (timeout/disconnect), the marker tag on the destination is
    /// the authority: present → roll forward, absent → abort. If even
    /// that read fails, the intent stays recorded for
    /// [`RemoteMetaStore::recover_rename_intents`].
    fn rename_across_shards(
        &self,
        src: usize,
        dst: usize,
        from: &str,
        to: &str,
    ) -> MetaResultT<()> {
        // Phase 1: intent + snapshot on the source shard.
        let (intent, attr, dist, tags) = match self.call(
            src,
            MetaOp::RenamePrepare {
                from: from.to_string(),
                to: to.to_string(),
            },
        )? {
            (
                _,
                MetaResult::RenamePrepared {
                    intent,
                    attr,
                    dist,
                    tags,
                },
            ) => (intent, attr, dist, tags),
            (_, other) => return Err(self.shape(src, &other)),
        };
        // Rewrite the snapshot to the destination path. The subfiles on
        // the I/O servers are keyed by path too; `Dpfs::rename` migrates
        // them after the metadata rename, same as the single-shard path.
        let mut moved = attr;
        moved.filename = to.to_string();
        let moved_dist: Vec<Distribution> = dist
            .into_iter()
            .map(|d| Distribution {
                filename: to.to_string(),
                ..d
            })
            .collect();
        let tags: Vec<(String, String)> = tags
            .into_iter()
            .filter(|(k, _)| k != RENAME_INTENT_TAG)
            .collect();
        // Phase 2: commit on the destination shard.
        match self.call(
            dst,
            MetaOp::RenameCommit {
                intent,
                attr: moved,
                dist: moved_dist,
                tags,
            },
        ) {
            Ok((_, MetaResult::Unit)) => {}
            Ok((_, other)) => {
                let _ = self.call(src, MetaOp::RenameAbort { intent });
                return Err(self.shape(dst, &other));
            }
            Err(MetaError::Remote(msg)) => {
                // Outcome unknown (mutations are not replayed past the
                // connect class). The destination marker is the authority;
                // the resolving read retries under the full matrix.
                match self.call(
                    dst,
                    MetaOp::GetTag {
                        filename: to.to_string(),
                        tag: RENAME_INTENT_TAG.to_string(),
                    },
                ) {
                    Ok((_, MetaResult::MaybeString(Some(v)))) if v == intent.to_string() => {
                        // Committed — roll forward below.
                    }
                    Ok(_) => {
                        // Did not commit (or a different rename owns the
                        // destination): undo the intent, surface the error.
                        let _ = self.call(src, MetaOp::RenameAbort { intent });
                        return Err(MetaError::Remote(msg));
                    }
                    Err(_) => {
                        // Can't even read the destination. Leave the
                        // intent for recover_rename_intents().
                        return Err(MetaError::Remote(format!(
                            "cross-shard rename {from} -> {to}: commit outcome unknown \
                             and the destination shard is unreachable; \
                             intent {intent} left for recovery: {msg}"
                        )));
                    }
                }
            }
            Err(app) => {
                // Clean application refusal (e.g. destination exists):
                // the commit provably did not happen.
                let _ = self.call(src, MetaOp::RenameAbort { intent });
                return Err(app);
            }
        }
        // Phase 3: drop the source entry + intent. If this fails the
        // rename HAS committed; the intent stays behind and
        // recover_rename_intents() will finish it.
        match self.call(src, MetaOp::RenameFinish { intent })? {
            (_, MetaResult::Unit) => {}
            (_, other) => return Err(self.shape(src, &other)),
        }
        // Best-effort marker cleanup; a leftover marker is harmless (the
        // intent it points at no longer exists).
        let _ = self.call(
            dst,
            MetaOp::RemoveTag {
                filename: to.to_string(),
                tag: RENAME_INTENT_TAG.to_string(),
            },
        );
        Ok(())
    }

    /// Resolve every pending cross-shard rename intent left behind by a
    /// crashed client: roll forward the ones whose destination marker
    /// proves the commit happened, abort the rest. Returns how many
    /// intents were resolved.
    pub fn recover_rename_intents(&self) -> MetaResultT<usize> {
        let mut resolved = 0;
        for src in 0..self.shards.len() {
            let intents = match self.call(src, MetaOp::ListRenameIntents)? {
                (_, MetaResult::Intents(xs)) => xs,
                (_, other) => return Err(self.shape(src, &other)),
            };
            for (intent, _from, to) in intents {
                let dst = self.route_file(&to);
                let committed = dst != src
                    && matches!(
                        self.call(
                            dst,
                            MetaOp::GetTag {
                                filename: to.clone(),
                                tag: RENAME_INTENT_TAG.to_string(),
                            },
                        )?,
                        (_, MetaResult::MaybeString(Some(ref v))) if *v == intent.to_string()
                    );
                if committed {
                    match self.call(src, MetaOp::RenameFinish { intent })? {
                        (_, MetaResult::Unit) => {}
                        (_, other) => return Err(self.shape(src, &other)),
                    }
                    let _ = self.call(
                        dst,
                        MetaOp::RemoveTag {
                            filename: to,
                            tag: RENAME_INTENT_TAG.to_string(),
                        },
                    );
                } else {
                    self.call(src, MetaOp::RenameAbort { intent })?;
                }
                resolved += 1;
            }
        }
        Ok(resolved)
    }
}

/// May a *mutating* metadata op be reissued after `err`? Only connect
/// failures: the dial never completed, so the request cannot have
/// reached the daemon. Timeouts, disconnects, and torn frames all leave
/// the outcome unknown — the daemon may have committed the mutation
/// before the failure — and replaying a committed `CreateFile`/`Mkdir`/
/// `RenameFile` turns success into a spurious `DuplicateKey`/not-found.
fn mutation_retryable(err: &DpfsError) -> bool {
    matches!(err, DpfsError::Connect { .. })
}

/// Wrap a transport-level failure for the `MetaStore` surface.
fn remote_err(server: &str, e: &DpfsError) -> MetaError {
    MetaError::Remote(format!("metadata rpc to {server} failed: {e}"))
}

/// The server answered with a result shape the op cannot produce.
fn shape_err(server: &str, got: &str) -> MetaError {
    MetaError::Remote(format!(
        "metadata server {server} answered with an unexpected result: {got}"
    ))
}

macro_rules! expect {
    ($self:ident, $shard:expr, $op:expr, $pat:pat => $out:expr) => {{
        let shard = $shard;
        match $self.call(shard, $op)? {
            (_, $pat) => Ok($out),
            (_, other) => Err($self.shape(shard, &other)),
        }
    }};
}

impl MetaStore for RemoteMetaStore {
    /// The server registry is replicated: every shard answers placement
    /// reads, so registration broadcasts (register is an idempotent
    /// upsert — replaying it on every shard is safe).
    fn register_server(&self, info: &ServerInfo) -> MetaResultT<()> {
        self.broadcast(
            0,
            || MetaOp::RegisterServer { info: info.clone() },
            |_| false,
        )
    }
    fn list_servers(&self) -> MetaResultT<Vec<ServerInfo>> {
        expect!(self, self.registry_shard(), MetaOp::ListServers, MetaResult::Servers(xs) => xs)
    }
    fn get_server(&self, name: &str) -> MetaResultT<Option<ServerInfo>> {
        expect!(
            self,
            self.registry_shard(),
            MetaOp::GetServer { name: name.into() },
            MetaResult::MaybeServer(s) => s
        )
    }
    fn remove_server(&self, name: &str) -> MetaResultT<bool> {
        let mut existed = false;
        for shard in 0..self.shards.len() {
            existed |= match self.call(shard, MetaOp::RemoveServer { name: name.into() })? {
                (_, MetaResult::Bool(b)) => b,
                (_, other) => return Err(self.shape(shard, &other)),
            };
        }
        Ok(existed)
    }

    fn create_file(&self, attr: &FileAttrRow, dist: &[Distribution]) -> MetaResultT<()> {
        expect!(
            self,
            self.route_file(&attr.filename),
            MetaOp::CreateFile { attr: attr.clone(), dist: dist.to_vec() },
            MetaResult::Unit => ()
        )
    }
    fn delete_file(&self, filename: &str) -> MetaResultT<Vec<Distribution>> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::DeleteFile { filename: filename.into() },
            MetaResult::Distributions(ds) => ds
        )
    }
    fn rename_file(&self, from: &str, to: &str) -> MetaResultT<()> {
        let src = self.route_file(from);
        let dst = self.route_file(to);
        if src == dst {
            return expect!(
                self,
                src,
                MetaOp::RenameFile { from: from.into(), to: to.into() },
                MetaResult::Unit => ()
            );
        }
        self.rename_across_shards(src, dst, from, to)
    }
    fn get_file_attr(&self, filename: &str) -> MetaResultT<Option<FileAttrRow>> {
        Ok(self.get_file_attr_with_gen(filename)?.1)
    }
    fn set_file_size(&self, filename: &str, size: i64) -> MetaResultT<()> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::SetFileSize { filename: filename.into(), size },
            MetaResult::Unit => ()
        )
    }
    fn set_file_permission(&self, filename: &str, permission: i64) -> MetaResultT<()> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::SetFilePermission { filename: filename.into(), permission },
            MetaResult::Unit => ()
        )
    }
    fn set_file_owner(&self, filename: &str, owner: &str) -> MetaResultT<()> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::SetFileOwner { filename: filename.into(), owner: owner.into() },
            MetaResult::Unit => ()
        )
    }

    fn get_distribution(&self, filename: &str) -> MetaResultT<Vec<Distribution>> {
        Ok(self.get_distribution_with_gen(filename)?.1)
    }
    fn update_distribution(&self, filename: &str, dist: &[Distribution]) -> MetaResultT<()> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::UpdateDistribution { filename: filename.into(), dist: dist.to_vec() },
            MetaResult::Unit => ()
        )
    }

    /// Directory skeletons are replicated so every shard can check
    /// "parent exists" locally. Home shard goes first — it owns the
    /// directory's file list and serializes racing mkdirs of the same
    /// path; a replica that already has the directory (an interrupted
    /// earlier broadcast, or a racing client that won) is fine.
    fn mkdir(&self, path: &str) -> MetaResultT<()> {
        self.broadcast(
            self.route_dir(path),
            || MetaOp::Mkdir { path: path.into() },
            |e| matches!(e, MetaError::DuplicateKey(_)),
        )
    }
    /// Home shard first again: it holds the file list, so the emptiness
    /// check happens where the files live. A replica that already lost
    /// the directory is fine.
    fn rmdir(&self, path: &str) -> MetaResultT<()> {
        self.broadcast(
            self.route_dir(path),
            || MetaOp::Rmdir { path: path.into() },
            |e| matches!(e, MetaError::NoSuchTable(_)),
        )
    }
    fn get_dir(&self, path: &str) -> MetaResultT<Option<DirEntry>> {
        expect!(
            self,
            self.route_dir(path),
            MetaOp::GetDir { path: path.into() },
            MetaResult::MaybeDir(d) => d
        )
    }

    fn set_tag(&self, filename: &str, tag: &str, value: &str) -> MetaResultT<()> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::SetTag {
                filename: filename.into(),
                tag: tag.into(),
                value: value.into()
            },
            MetaResult::Unit => ()
        )
    }
    fn get_tag(&self, filename: &str, tag: &str) -> MetaResultT<Option<String>> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::GetTag { filename: filename.into(), tag: tag.into() },
            MetaResult::MaybeString(s) => s
        )
    }
    fn list_tags(&self, filename: &str) -> MetaResultT<Vec<(String, String)>> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::ListTags { filename: filename.into() },
            MetaResult::Tags(xs) => xs
        )
    }
    fn remove_tag(&self, filename: &str, tag: &str) -> MetaResultT<bool> {
        expect!(
            self,
            self.route_file(filename),
            MetaOp::RemoveTag { filename: filename.into(), tag: tag.into() },
            MetaResult::Bool(b) => b
        )
    }
    /// Tag search fans out: matches live wherever their file's directory
    /// hashes. Results are merged and re-sorted to keep the single-shard
    /// ordering contract (sorted by filename).
    fn find_by_tag(&self, tag: &str, pattern: &str) -> MetaResultT<Vec<(String, String, i64)>> {
        let mut all = Vec::new();
        for shard in 0..self.shards.len() {
            match self.call(
                shard,
                MetaOp::FindByTag {
                    tag: tag.into(),
                    pattern: pattern.into(),
                },
            )? {
                (_, MetaResult::TagHits(xs)) => all.extend(xs),
                (_, other) => return Err(self.shape(shard, &other)),
            }
        }
        all.sort();
        Ok(all)
    }

    /// Brick counts fan out and merge-sum: each shard only knows the
    /// distributions of the files it owns.
    fn server_brick_counts(&self) -> MetaResultT<Vec<(String, i64)>> {
        let mut counts: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
        for shard in 0..self.shards.len() {
            match self.call(shard, MetaOp::ServerBrickCounts)? {
                (_, MetaResult::BrickCounts(xs)) => {
                    for (server, n) in xs {
                        *counts.entry(server).or_insert(0) += n;
                    }
                }
                (_, other) => return Err(self.shape(shard, &other)),
            }
        }
        Ok(counts.into_iter().collect())
    }

    /// The plane-wide generation: the sum of every shard's counter.
    /// Monotonic (each per-shard counter only grows), and any mutation
    /// anywhere moves it — the property the embedded single counter had.
    fn generation(&self) -> MetaResultT<u64> {
        let mut sum = 0;
        for shard in 0..self.shards.len() {
            sum += self.generation_of(shard)?;
        }
        Ok(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_only_retry_connect_failures() {
        assert!(mutation_retryable(&DpfsError::Connect {
            server: "m".into(),
            source: std::io::Error::other("refused"),
        }));
        // Errors that may arrive after the daemon executed the request:
        // retryable for reads, never for mutations.
        let ambiguous = [
            DpfsError::Timeout {
                server: "m".into(),
                timeout: std::time::Duration::from_secs(1),
            },
            DpfsError::Disconnected {
                server: "m".into(),
                reason: "lost".into(),
            },
            DpfsError::Frame(dpfs_proto::FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe",
            ))),
        ];
        for err in &ambiguous {
            assert!(RetryPolicy::retryable(err), "{err} retries as a read");
            assert!(!mutation_retryable(err), "{err} must not replay a mutation");
        }
    }
}
