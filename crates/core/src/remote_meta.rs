//! `MetaStore` over the wire: the client half of the metadata service.
//!
//! The paper's clients send every metadata query "to the database server"
//! over the network (§5). [`RemoteMetaStore`] is that path: each
//! `MetaStore` call becomes one [`MetaOp`] RPC to a `dpfs-metad` daemon,
//! carried by the same multiplexed [`ConnPool`] transport as data traffic
//! — so metadata inherits correlation IDs, per-request deadlines, the
//! retry error-class matrix, and tracing unchanged. Every reply's
//! envelope carries the daemon's current metadata generation, which this
//! store republishes via [`RemoteMetaStore::last_gen`] for the caching
//! layer ([`crate::meta_cache`]).
//!
//! Errors: server-side `MetaError`s travel as wire codes and reconstruct
//! into the exact variant ([`dpfs_meta::MetaError::from_wire`]), so
//! callers' error mapping (duplicate key → file exists, ...) works
//! identically for embedded and remote mounts. Transport failures
//! (connect, timeout, disconnect — after the pool's retries) surface as
//! [`dpfs_meta::MetaError::Remote`].
//!
//! Retries: read ops replay under the full PR-4 error-class matrix, but
//! mutations are not idempotent — a replayed `CreateFile`/`RenameFile`
//! whose first attempt actually committed answers `DuplicateKey`/
//! `NoSuchTable` even though the op succeeded — so they are reissued
//! only after *connect* failures, the one class where the request
//! provably never left this client. A timeout or disconnect on a
//! mutation surfaces as `MetaError::Remote` (outcome unknown) instead
//! of being replayed into a spurious application error.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpfs_meta::{
    DirEntry, Distribution, FileAttrRow, MetaError, MetaStore, Result as MetaResultT, ServerInfo,
};
use dpfs_proto::{MetaOp, MetaResult, Request, Response};

use crate::conn::ConnPool;
use crate::error::DpfsError;
use crate::retry::RetryPolicy;
use crate::trace;

/// A [`MetaStore`] backed by metadata RPCs to one `dpfs-metad` daemon.
pub struct RemoteMetaStore {
    pool: Arc<ConnPool>,
    /// The metadata daemon's server name (dial string or testbed alias).
    server: String,
    /// Highest generation seen on any reply envelope.
    last_gen: AtomicU64,
    /// Trace ID of the most recent metadata RPC (tests and diagnostics).
    last_trace_id: AtomicU64,
}

impl RemoteMetaStore {
    /// A store speaking to the daemon registered as `server` in `pool`'s
    /// resolver.
    pub fn new(pool: Arc<ConnPool>, server: impl Into<String>) -> RemoteMetaStore {
        RemoteMetaStore {
            pool,
            server: server.into(),
            last_gen: AtomicU64::new(0),
            last_trace_id: AtomicU64::new(0),
        }
    }

    /// The metadata daemon's server name.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// The connection pool metadata RPCs ride on.
    pub fn pool(&self) -> &Arc<ConnPool> {
        &self.pool
    }

    /// Highest metadata generation observed on any reply (0 before the
    /// first RPC). Monotonic per store.
    pub fn last_gen(&self) -> u64 {
        self.last_gen.load(Ordering::Relaxed)
    }

    /// Trace ID stamped on the most recent metadata RPC. Filter
    /// [`trace::ring()`] events on it to see the RPC's client span and the
    /// daemon-side decode/queue/handle/respond events.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id.load(Ordering::Relaxed)
    }

    /// Issue one metadata op and return `(generation, result)`. The result
    /// is never the `Err` variant — remote errors are reconstructed into
    /// `MetaError` here. Transient transport failures are retried under
    /// the pool's policy, each retry traced like any other RPC; mutating
    /// ops retry only the connect class (see [`mutation_retryable`]).
    fn call(&self, op: MetaOp) -> Result<(u64, MetaResult), MetaError> {
        let trace_id = trace::next_trace_id();
        self.last_trace_id.store(trace_id, Ordering::Relaxed);
        let retryable: fn(&DpfsError) -> bool = if op.is_mutation() {
            mutation_retryable
        } else {
            RetryPolicy::retryable
        };
        let req = Request::Meta { op };
        let timeout = self.pool.rpc_timeout();
        let first = self
            .pool
            .submit_traced(&self.server, &req, trace_id)
            .and_then(|p| p.wait(timeout));
        let policy = self.pool.retry_policy();
        let resp = match first {
            Err(err) if policy.enabled() && retryable(&err) => {
                self.pool
                    .retry_after_if(&self.server, &req, trace_id, err, policy, retryable)
            }
            other => other,
        }
        .map_err(|e| remote_err(&self.server, &e))?;
        match resp {
            Response::Meta { gen, result } => {
                self.last_gen.fetch_max(gen, Ordering::Relaxed);
                match result {
                    MetaResult::Err { code, message } => Err(MetaError::from_wire(code, message)),
                    ok => Ok((gen, ok)),
                }
            }
            Response::Error { code, message } => Err(MetaError::Remote(format!(
                "metadata server {} rejected the request ({code:?}): {message}",
                self.server
            ))),
            other => Err(shape_err(&self.server, &format!("{other:?}"))),
        }
    }

    /// [`MetaStore::get_file_attr`] plus the generation the reply was
    /// stamped with (the caching layer stamps entries with it).
    pub(crate) fn get_file_attr_with_gen(
        &self,
        filename: &str,
    ) -> Result<(u64, Option<FileAttrRow>), MetaError> {
        match self.call(MetaOp::GetFileAttr {
            filename: filename.to_string(),
        })? {
            (gen, MetaResult::MaybeAttr(a)) => Ok((gen, a)),
            (_, other) => Err(shape_err(&self.server, &format!("{other:?}"))),
        }
    }

    /// [`MetaStore::get_distribution`] plus the reply's generation.
    pub(crate) fn get_distribution_with_gen(
        &self,
        filename: &str,
    ) -> Result<(u64, Vec<Distribution>), MetaError> {
        match self.call(MetaOp::GetDistribution {
            filename: filename.to_string(),
        })? {
            (gen, MetaResult::Distributions(ds)) => Ok((gen, ds)),
            (_, other) => Err(shape_err(&self.server, &format!("{other:?}"))),
        }
    }
}

/// May a *mutating* metadata op be reissued after `err`? Only connect
/// failures: the dial never completed, so the request cannot have
/// reached the daemon. Timeouts, disconnects, and torn frames all leave
/// the outcome unknown — the daemon may have committed the mutation
/// before the failure — and replaying a committed `CreateFile`/`Mkdir`/
/// `RenameFile` turns success into a spurious `DuplicateKey`/not-found.
fn mutation_retryable(err: &DpfsError) -> bool {
    matches!(err, DpfsError::Connect { .. })
}

/// Wrap a transport-level failure for the `MetaStore` surface.
fn remote_err(server: &str, e: &DpfsError) -> MetaError {
    MetaError::Remote(format!("metadata rpc to {server} failed: {e}"))
}

/// The server answered with a result shape the op cannot produce.
fn shape_err(server: &str, got: &str) -> MetaError {
    MetaError::Remote(format!(
        "metadata server {server} answered with an unexpected result: {got}"
    ))
}

macro_rules! expect {
    ($self:ident, $op:expr, $pat:pat => $out:expr) => {
        match $self.call($op)? {
            (_, $pat) => Ok($out),
            (_, other) => Err(shape_err(&$self.server, &format!("{other:?}"))),
        }
    };
}

impl MetaStore for RemoteMetaStore {
    fn register_server(&self, info: &ServerInfo) -> MetaResultT<()> {
        expect!(self, MetaOp::RegisterServer { info: info.clone() }, MetaResult::Unit => ())
    }
    fn list_servers(&self) -> MetaResultT<Vec<ServerInfo>> {
        expect!(self, MetaOp::ListServers, MetaResult::Servers(xs) => xs)
    }
    fn get_server(&self, name: &str) -> MetaResultT<Option<ServerInfo>> {
        expect!(self, MetaOp::GetServer { name: name.into() }, MetaResult::MaybeServer(s) => s)
    }
    fn remove_server(&self, name: &str) -> MetaResultT<bool> {
        expect!(self, MetaOp::RemoveServer { name: name.into() }, MetaResult::Bool(b) => b)
    }

    fn create_file(&self, attr: &FileAttrRow, dist: &[Distribution]) -> MetaResultT<()> {
        expect!(
            self,
            MetaOp::CreateFile { attr: attr.clone(), dist: dist.to_vec() },
            MetaResult::Unit => ()
        )
    }
    fn delete_file(&self, filename: &str) -> MetaResultT<Vec<Distribution>> {
        expect!(
            self,
            MetaOp::DeleteFile { filename: filename.into() },
            MetaResult::Distributions(ds) => ds
        )
    }
    fn rename_file(&self, from: &str, to: &str) -> MetaResultT<()> {
        expect!(
            self,
            MetaOp::RenameFile { from: from.into(), to: to.into() },
            MetaResult::Unit => ()
        )
    }
    fn get_file_attr(&self, filename: &str) -> MetaResultT<Option<FileAttrRow>> {
        Ok(self.get_file_attr_with_gen(filename)?.1)
    }
    fn set_file_size(&self, filename: &str, size: i64) -> MetaResultT<()> {
        expect!(
            self,
            MetaOp::SetFileSize { filename: filename.into(), size },
            MetaResult::Unit => ()
        )
    }
    fn set_file_permission(&self, filename: &str, permission: i64) -> MetaResultT<()> {
        expect!(
            self,
            MetaOp::SetFilePermission { filename: filename.into(), permission },
            MetaResult::Unit => ()
        )
    }
    fn set_file_owner(&self, filename: &str, owner: &str) -> MetaResultT<()> {
        expect!(
            self,
            MetaOp::SetFileOwner { filename: filename.into(), owner: owner.into() },
            MetaResult::Unit => ()
        )
    }

    fn get_distribution(&self, filename: &str) -> MetaResultT<Vec<Distribution>> {
        Ok(self.get_distribution_with_gen(filename)?.1)
    }
    fn update_distribution(&self, filename: &str, dist: &[Distribution]) -> MetaResultT<()> {
        expect!(
            self,
            MetaOp::UpdateDistribution { filename: filename.into(), dist: dist.to_vec() },
            MetaResult::Unit => ()
        )
    }

    fn mkdir(&self, path: &str) -> MetaResultT<()> {
        expect!(self, MetaOp::Mkdir { path: path.into() }, MetaResult::Unit => ())
    }
    fn rmdir(&self, path: &str) -> MetaResultT<()> {
        expect!(self, MetaOp::Rmdir { path: path.into() }, MetaResult::Unit => ())
    }
    fn get_dir(&self, path: &str) -> MetaResultT<Option<DirEntry>> {
        expect!(self, MetaOp::GetDir { path: path.into() }, MetaResult::MaybeDir(d) => d)
    }

    fn set_tag(&self, filename: &str, tag: &str, value: &str) -> MetaResultT<()> {
        expect!(
            self,
            MetaOp::SetTag {
                filename: filename.into(),
                tag: tag.into(),
                value: value.into()
            },
            MetaResult::Unit => ()
        )
    }
    fn get_tag(&self, filename: &str, tag: &str) -> MetaResultT<Option<String>> {
        expect!(
            self,
            MetaOp::GetTag { filename: filename.into(), tag: tag.into() },
            MetaResult::MaybeString(s) => s
        )
    }
    fn list_tags(&self, filename: &str) -> MetaResultT<Vec<(String, String)>> {
        expect!(
            self,
            MetaOp::ListTags { filename: filename.into() },
            MetaResult::Tags(xs) => xs
        )
    }
    fn remove_tag(&self, filename: &str, tag: &str) -> MetaResultT<bool> {
        expect!(
            self,
            MetaOp::RemoveTag { filename: filename.into(), tag: tag.into() },
            MetaResult::Bool(b) => b
        )
    }
    fn find_by_tag(&self, tag: &str, pattern: &str) -> MetaResultT<Vec<(String, String, i64)>> {
        expect!(
            self,
            MetaOp::FindByTag { tag: tag.into(), pattern: pattern.into() },
            MetaResult::TagHits(xs) => xs
        )
    }

    fn server_brick_counts(&self) -> MetaResultT<Vec<(String, i64)>> {
        expect!(self, MetaOp::ServerBrickCounts, MetaResult::BrickCounts(xs) => xs)
    }

    fn generation(&self) -> MetaResultT<u64> {
        match self.call(MetaOp::Generation)? {
            (gen, MetaResult::Unit) => Ok(gen),
            (_, other) => Err(shape_err(&self.server, &format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutations_only_retry_connect_failures() {
        assert!(mutation_retryable(&DpfsError::Connect {
            server: "m".into(),
            source: std::io::Error::other("refused"),
        }));
        // Errors that may arrive after the daemon executed the request:
        // retryable for reads, never for mutations.
        let ambiguous = [
            DpfsError::Timeout {
                server: "m".into(),
                timeout: std::time::Duration::from_secs(1),
            },
            DpfsError::Disconnected {
                server: "m".into(),
                reason: "lost".into(),
            },
            DpfsError::Frame(dpfs_proto::FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe",
            ))),
        ];
        for err in &ambiguous {
            assert!(RetryPolicy::retryable(err), "{err} retries as a read");
            assert!(!mutation_retryable(err), "{err} must not replay a mutation");
        }
    }
}
