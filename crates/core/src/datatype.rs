//! MPI-IO-style derived datatypes for non-contiguous access.
//!
//! "DPFS adopts MPI-IO's derived data type approach to allow the user to
//! express non-contiguous data conveniently" (paper §6). A datatype
//! describes a pattern of byte runs in *file space*; the user's buffer packs
//! those runs contiguously in order.

use crate::error::{DpfsError, Result};
use crate::geometry::{Region, Shape};

/// A derived datatype. All units are bytes except where noted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datatype {
    /// `count` contiguous bytes.
    Contiguous { count: u64 },
    /// `count` blocks of `blocklen` copies of `base`, the start of each
    /// block separated by `stride` copies of `base` (MPI_Type_vector).
    Vector {
        count: u64,
        blocklen: u64,
        stride: u64,
        base: Box<Datatype>,
    },
    /// A rectangular sub-array of an N-d array with `elem_bytes`-byte
    /// elements stored row-major (MPI_Type_create_subarray).
    Subarray {
        array: Shape,
        region: Region,
        elem_bytes: u64,
    },
    /// Explicit `(displacement, length)` blocks, in bytes
    /// (MPI_Type_create_hindexed). Displacements must be strictly
    /// increasing and non-overlapping.
    Indexed { blocks: Vec<(u64, u64)> },
}

impl Datatype {
    /// `count` contiguous bytes.
    pub fn contiguous(count: u64) -> Datatype {
        Datatype::Contiguous { count }
    }

    /// Byte-granular vector: `count` blocks of `blocklen` bytes every
    /// `stride` bytes.
    pub fn vector(count: u64, blocklen: u64, stride: u64) -> Datatype {
        Datatype::Vector {
            count,
            blocklen,
            stride,
            base: Box::new(Datatype::contiguous(1)),
        }
    }

    /// Sub-array datatype.
    pub fn subarray(array: Shape, region: Region, elem_bytes: u64) -> Result<Datatype> {
        if !region.fits_in(&array) {
            return Err(DpfsError::InvalidArgument(format!(
                "subarray region {:?}+{:?} outside array {:?}",
                region.origin, region.extent, array.0
            )));
        }
        if elem_bytes == 0 {
            return Err(DpfsError::InvalidArgument("zero element size".into()));
        }
        Ok(Datatype::Subarray {
            array,
            region,
            elem_bytes,
        })
    }

    /// Indexed datatype; validates monotone non-overlapping blocks.
    pub fn indexed(blocks: Vec<(u64, u64)>) -> Result<Datatype> {
        let mut prev_end = 0u64;
        for (i, &(disp, len)) in blocks.iter().enumerate() {
            if len == 0 {
                return Err(DpfsError::InvalidArgument(format!(
                    "indexed block {i} has zero length"
                )));
            }
            if i > 0 && disp < prev_end {
                return Err(DpfsError::InvalidArgument(format!(
                    "indexed block {i} at {disp} overlaps or reorders (prev end {prev_end})"
                )));
            }
            prev_end = disp + len;
        }
        Ok(Datatype::Indexed { blocks })
    }

    /// Total payload bytes (the packed buffer size).
    pub fn size(&self) -> u64 {
        match self {
            Datatype::Contiguous { count } => *count,
            Datatype::Vector {
                count,
                blocklen,
                base,
                ..
            } => count * blocklen * base.size(),
            Datatype::Subarray {
                region, elem_bytes, ..
            } => region.volume() * elem_bytes,
            Datatype::Indexed { blocks } => blocks.iter().map(|(_, l)| l).sum(),
        }
    }

    /// The span from the first to one past the last byte touched.
    pub fn extent(&self) -> u64 {
        match self {
            Datatype::Contiguous { count } => *count,
            Datatype::Vector {
                count,
                blocklen,
                stride,
                base,
            } => {
                if *count == 0 {
                    0
                } else {
                    ((count - 1) * stride + blocklen) * base.size()
                }
            }
            Datatype::Subarray {
                array, elem_bytes, ..
            } => array.volume() * elem_bytes,
            Datatype::Indexed { blocks } => blocks.last().map(|(d, l)| d + l).unwrap_or(0),
        }
    }

    /// Flatten to `(file_offset, len)` byte runs relative to the datatype's
    /// start, in increasing offset order, adjacent runs coalesced. The
    /// packed-buffer offset of run `i` is the sum of lengths of runs
    /// `0..i`.
    pub fn flatten(&self) -> Vec<(u64, u64)> {
        let mut runs = Vec::new();
        self.flatten_into(0, &mut runs);
        coalesce(runs)
    }

    fn flatten_into(&self, base_off: u64, out: &mut Vec<(u64, u64)>) {
        match self {
            Datatype::Contiguous { count } => {
                if *count > 0 {
                    out.push((base_off, *count));
                }
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
                base,
            } => {
                let unit = base.size();
                for i in 0..*count {
                    let block_start = base_off + i * stride * unit;
                    // blocklen consecutive base copies are contiguous iff
                    // base itself is contiguous; recurse per element
                    match base.as_ref() {
                        Datatype::Contiguous { count: c } => {
                            if blocklen * c > 0 {
                                out.push((block_start, blocklen * c));
                            }
                        }
                        other => {
                            for j in 0..*blocklen {
                                other.flatten_into(block_start + j * unit, out);
                            }
                        }
                    }
                }
            }
            Datatype::Subarray {
                array,
                region,
                elem_bytes,
            } => {
                for (start, len) in region.contiguous_runs(array) {
                    out.push((base_off + start * elem_bytes, len * elem_bytes));
                }
            }
            Datatype::Indexed { blocks } => {
                for &(disp, len) in blocks {
                    out.push((base_off + disp, len));
                }
            }
        }
    }
}

/// Merge adjacent `(offset, len)` runs. Input must be sorted by offset.
fn coalesce(runs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(runs.len());
    for (off, len) in runs {
        match out.last_mut() {
            Some((last_off, last_len)) if *last_off + *last_len == off => {
                *last_len += len;
            }
            _ => out.push((off, len)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(d: &[u64]) -> Shape {
        Shape::new(d.to_vec()).unwrap()
    }

    fn region(o: &[u64], e: &[u64]) -> Region {
        Region::new(o.to_vec(), e.to_vec()).unwrap()
    }

    #[test]
    fn contiguous_flattens_to_one_run() {
        let t = Datatype::contiguous(100);
        assert_eq!(t.flatten(), vec![(0, 100)]);
        assert_eq!(t.size(), 100);
        assert_eq!(t.extent(), 100);
    }

    #[test]
    fn vector_strided_runs() {
        // 4 blocks of 2 bytes every 8 bytes: a column of a byte matrix
        let t = Datatype::vector(4, 2, 8);
        assert_eq!(t.flatten(), vec![(0, 2), (8, 2), (16, 2), (24, 2)]);
        assert_eq!(t.size(), 8);
        assert_eq!(t.extent(), 26);
    }

    #[test]
    fn vector_with_stride_equal_blocklen_coalesces() {
        let t = Datatype::vector(4, 2, 2);
        assert_eq!(t.flatten(), vec![(0, 8)]);
    }

    #[test]
    fn vector_zero_count() {
        let t = Datatype::vector(0, 2, 8);
        assert!(t.flatten().is_empty());
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 0);
    }

    #[test]
    fn subarray_column_of_matrix() {
        // col 3 of an 8x8 f32 matrix: 8 runs of 4 bytes, stride 32
        let t = Datatype::subarray(shape(&[8, 8]), region(&[0, 3], &[8, 1]), 4).unwrap();
        let runs = t.flatten();
        assert_eq!(runs.len(), 8);
        assert_eq!(runs[0], (12, 4));
        assert_eq!(runs[1], (44, 4));
        assert_eq!(t.size(), 32);
        assert_eq!(t.extent(), 256);
    }

    #[test]
    fn subarray_full_rows_fuse() {
        let t = Datatype::subarray(shape(&[8, 8]), region(&[2, 0], &[3, 8]), 1).unwrap();
        assert_eq!(t.flatten(), vec![(16, 24)]);
    }

    #[test]
    fn subarray_out_of_bounds_rejected() {
        assert!(Datatype::subarray(shape(&[4, 4]), region(&[3, 3], &[2, 2]), 1).is_err());
        assert!(Datatype::subarray(shape(&[4, 4]), region(&[0, 0], &[2, 2]), 0).is_err());
    }

    #[test]
    fn indexed_blocks() {
        let t = Datatype::indexed(vec![(0, 4), (10, 2), (20, 8)]).unwrap();
        assert_eq!(t.flatten(), vec![(0, 4), (10, 2), (20, 8)]);
        assert_eq!(t.size(), 14);
        assert_eq!(t.extent(), 28);
    }

    #[test]
    fn indexed_adjacent_coalesce() {
        let t = Datatype::indexed(vec![(0, 4), (4, 4), (16, 4)]).unwrap();
        assert_eq!(t.flatten(), vec![(0, 8), (16, 4)]);
    }

    #[test]
    fn indexed_validation() {
        assert!(Datatype::indexed(vec![(0, 4), (2, 4)]).is_err()); // overlap
        assert!(Datatype::indexed(vec![(10, 4), (0, 4)]).is_err()); // reorder
        assert!(Datatype::indexed(vec![(0, 0)]).is_err()); // zero len
        assert!(Datatype::indexed(vec![]).unwrap().flatten().is_empty());
    }

    #[test]
    fn nested_vector_of_subarray_pattern() {
        // vector whose base is a 2-byte contiguous element: 3 blocks of 2
        // elems (4 bytes) every 4 elems (8 bytes)
        let t = Datatype::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
            base: Box::new(Datatype::contiguous(2)),
        };
        assert_eq!(t.flatten(), vec![(0, 4), (8, 4), (16, 4)]);
        assert_eq!(t.size(), 12);
    }

    #[test]
    fn flatten_matches_naive_enumeration() {
        // cross-check subarray flatten against per-element enumeration
        let array = shape(&[5, 7]);
        let r = region(&[1, 2], &[3, 4]);
        let t = Datatype::subarray(array.clone(), r.clone(), 2).unwrap();
        let mut expect_bytes = Vec::new();
        for i in 0..3u64 {
            for j in 0..4u64 {
                let lin = array.linearize(&[1 + i, 2 + j]);
                expect_bytes.push(lin * 2);
                expect_bytes.push(lin * 2 + 1);
            }
        }
        expect_bytes.sort();
        let mut got_bytes = Vec::new();
        for (off, len) in t.flatten() {
            for b in off..off + len {
                got_bytes.push(b);
            }
        }
        assert_eq!(got_bytes, expect_bytes);
    }
}
