//! Paper-style API (§6): `DPFS-Open`, `DPFS-Write`, `DPFS-Read`,
//! `DPFS-Close`.
//!
//! Thin, faithful wrappers over [`Dpfs`] and [`FileHandle`] for users
//! porting code written
//! against the paper's C-style interface. New code should use the typed
//! methods directly.

use crate::datatype::Datatype;
use crate::error::Result;
use crate::file::FileHandle;
use crate::fs::Dpfs;
use crate::hints::Hint;

/// Access mode for [`dpfs_open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Open an existing file for reading.
    Read,
    /// Create a new file for writing; requires a hint.
    Write,
}

/// `DPFS-Open()`: open or create a file. "The main arguments include a
/// pointer to DPFS file handle, file name, access mode (read or write) and
/// the suggested number of I/O nodes by the user (for write operation
/// only)." The I/O-node suggestion and file level travel in the `hint`.
pub fn dpfs_open(fs: &Dpfs, name: &str, mode: OpenMode, hint: Option<&Hint>) -> Result<FileHandle> {
    match mode {
        OpenMode::Read => fs.open(name),
        OpenMode::Write => match hint {
            Some(h) => fs.create(name, h),
            None => fs.open(name), // re-open existing file for update
        },
    }
}

/// `DPFS-Write()`: write through a derived datatype anchored at byte
/// `offset`. "The main arguments include an opened DPFS file handle, a
/// buffer holding the data to be written, the derived data type to express
/// non-contiguous data..."
pub fn dpfs_write(
    handle: &mut FileHandle,
    offset: u64,
    datatype: &Datatype,
    buf: &[u8],
) -> Result<()> {
    handle.write_datatype(offset, datatype, buf)
}

/// `DPFS-Read()`: read through a derived datatype anchored at byte
/// `offset`.
pub fn dpfs_read(handle: &mut FileHandle, offset: u64, datatype: &Datatype) -> Result<Vec<u8>> {
    handle.read_datatype(offset, datatype)
}

/// `DPFS-Close()`: close the file, persisting final metadata.
pub fn dpfs_close(handle: FileHandle) -> Result<()> {
    handle.close()
}
