//! Error type for the DPFS client library.

use std::fmt;

use dpfs_meta::MetaError;
use dpfs_proto::{ErrorCode, FrameError};

/// Errors surfaced by the DPFS API.
#[derive(Debug)]
pub enum DpfsError {
    /// Metadata-database failure.
    Meta(MetaError),
    /// Wire-protocol failure talking to a server.
    Frame(FrameError),
    /// A server answered with a protocol-level error.
    Server { code: ErrorCode, message: String },
    /// Could not connect to a server.
    Connect {
        server: String,
        source: std::io::Error,
    },
    /// An RPC did not complete within its deadline. The connection is
    /// poisoned and will be redialed on next use.
    Timeout {
        server: String,
        timeout: std::time::Duration,
    },
    /// The transport connection died while requests were in flight; every
    /// pending waiter on that connection receives this error.
    Disconnected { server: String, reason: String },
    /// A server acknowledged a write with fewer (or more) bytes than the
    /// request carried.
    ShortWrite {
        server: String,
        expected: u64,
        written: u64,
    },
    /// A server answered a read with a chunk whose length does not match
    /// the range that requested it. The response is rejected before any
    /// byte lands in the caller's buffer — a hostile or buggy server must
    /// surface as an error, never as an out-of-bounds scatter copy.
    ShortRead {
        server: String,
        /// Index of the offending chunk within the response.
        chunk: usize,
        /// Bytes the range asked for.
        expected: u64,
        /// Bytes the server returned.
        got: u64,
    },
    /// Several per-server failures from one logical operation that must
    /// reach every server (e.g. `sync`).
    Aggregate {
        op: &'static str,
        failures: Vec<(String, DpfsError)>,
    },
    /// A read completed *partially*: some subfile requests failed at the
    /// transport level (after retries) and their byte ranges were
    /// zero-filled. Only surfaced when the caller opted in via
    /// [`crate::file::ClientOptions::degraded_reads`]; `data` carries the
    /// buffer with holes so callers can accept it, and `outcomes` says
    /// which servers failed and why.
    Degraded {
        op: &'static str,
        /// The read buffer, zero-filled where servers failed. Empty for
        /// APIs that scatter into a caller-owned buffer.
        data: Vec<u8>,
        /// One entry per failed per-server request.
        outcomes: Vec<SubfileOutcome>,
    },
    /// The named file does not exist.
    NoSuchFile(String),
    /// The named file already exists.
    FileExists(String),
    /// The named directory does not exist.
    NoSuchDirectory(String),
    /// Invalid argument (shape mismatch, out-of-bounds region, bad hint...).
    InvalidArgument(String),
    /// The operation is not valid for the file's level.
    WrongLevel {
        expected: &'static str,
        actual: String,
    },
    /// Local I/O error (import/export of sequential files).
    Io(std::io::Error),
}

/// How one per-server subfile request of a degraded read ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubfileOutcome {
    /// Server the request targeted.
    pub server: String,
    /// Bytes of the read buffer this request covered (all zero-filled).
    pub bytes: u64,
    /// Why the request failed (the final error after retries).
    pub error: String,
}

impl fmt::Display for DpfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpfsError::Meta(e) => write!(f, "metadata error: {e}"),
            DpfsError::Frame(e) => write!(f, "protocol error: {e}"),
            DpfsError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            DpfsError::Connect { server, source } => {
                write!(f, "cannot connect to server {server}: {source}")
            }
            DpfsError::Timeout { server, timeout } => {
                write!(f, "rpc to server {server} timed out after {timeout:?}")
            }
            DpfsError::Disconnected { server, reason } => {
                write!(f, "connection to server {server} lost: {reason}")
            }
            DpfsError::ShortWrite {
                server,
                expected,
                written,
            } => {
                write!(
                    f,
                    "short write on server {server}: sent {expected} bytes, \
                     server acknowledged {written}"
                )
            }
            DpfsError::ShortRead {
                server,
                chunk,
                expected,
                got,
            } => {
                write!(
                    f,
                    "short read on server {server}: chunk {chunk} carried {got} \
                     bytes for a {expected}-byte range"
                )
            }
            DpfsError::Aggregate { op, failures } => {
                write!(f, "{op} failed on {} server(s):", failures.len())?;
                for (server, err) in failures {
                    write!(f, " [{server}: {err}]")?;
                }
                Ok(())
            }
            DpfsError::Degraded { op, data, outcomes } => {
                write!(
                    f,
                    "{op} degraded: {} of {} bytes zero-filled across {} server(s):",
                    outcomes.iter().map(|o| o.bytes).sum::<u64>(),
                    data.len(),
                    outcomes.len()
                )?;
                for o in outcomes {
                    write!(f, " [{}: {}]", o.server, o.error)?;
                }
                Ok(())
            }
            DpfsError::NoSuchFile(p) => write!(f, "no such file: {p}"),
            DpfsError::FileExists(p) => write!(f, "file exists: {p}"),
            DpfsError::NoSuchDirectory(p) => write!(f, "no such directory: {p}"),
            DpfsError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            DpfsError::WrongLevel { expected, actual } => {
                write!(f, "operation requires a {expected} file, found {actual}")
            }
            DpfsError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DpfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DpfsError::Meta(e) => Some(e),
            DpfsError::Frame(e) => Some(e),
            DpfsError::Connect { source, .. } => Some(source),
            DpfsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MetaError> for DpfsError {
    fn from(e: MetaError) -> Self {
        DpfsError::Meta(e)
    }
}

impl From<FrameError> for DpfsError {
    fn from(e: FrameError) -> Self {
        DpfsError::Frame(e)
    }
}

impl From<std::io::Error> for DpfsError {
    fn from(e: std::io::Error) -> Self {
        DpfsError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DpfsError>;
