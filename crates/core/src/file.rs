//! Open-file handles: the read/write engine.
//!
//! A [`FileHandle`] owns everything needed to turn a user access into server
//! requests: the file's layout, its brick map, the server name list, and the
//! client's options (request combination on/off, stagger rank, read
//! granularity). Per-server requests are *submitted* through the pool's
//! multiplexed transport in the planner's staggered order — every frame
//! goes on the wire before any response is awaited — then completions are
//! collected in plan order. One client thereby overlaps the service time of
//! every server it stripes over, and two handles striped over the same
//! servers overlap on the shared per-server connections.
//! [`ClientOptions::serial_dispatch`] restores the original
//! one-request-at-a-time loop and [`ClientOptions::lockstep_rpc`] the PR 1
//! thread-fan-out-with-lockstep-connections client, both for ablation.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use dpfs_meta::{Distribution, MetaStore};
use dpfs_proto::{AccessPattern, Request, Response, MAX_PATTERN_RANGES};

use crate::cache::BrickCache;
use crate::conn::{expect_chunks, expect_list_data, expect_written, ConnPool};
use crate::datatype::Datatype;
use crate::error::{DpfsError, Result, SubfileOutcome};
use crate::geometry::Region;
use crate::hints::{FileLevel, Placement, RedundancyPolicy};
use crate::layout::{bricks_for, BrickRun, Layout};
use crate::placement::BrickMap;
use crate::plan::{plan_list, plan_reads, plan_writes, Granularity, ListRequest};
use crate::retry::RetryPolicy;
use crate::trace;
use crate::transport::DEFAULT_RPC_TIMEOUT;

/// Per-client I/O options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOptions {
    /// Apply the paper's request-combination optimization (§4.2).
    pub combine: bool,
    /// Read transfer granularity (whole bricks by default, as in the paper).
    pub granularity: Granularity,
    /// Ship combined I/O as compact [`AccessPattern`] descriptors
    /// (`ReadList`/`WriteList`): the server expands the pattern against
    /// its own subfile geometry and one coalesced payload travels per
    /// request, instead of an enumerated range list with per-range
    /// framing. Engages only under `combine` (and, for reads, with the
    /// brick cache off — cache fills need per-brick chunks); a per-request
    /// cost model transparently falls back to the legacy shape when the
    /// descriptor would encode no smaller than the enumerated list.
    pub list_io: bool,
    /// This client's rank; sets the staggered schedule's starting server.
    pub rank: usize,
    /// Issue per-server requests one at a time, awaiting each response
    /// before submitting the next (the original lockstep client; kept for
    /// ablation).
    pub serial_dispatch: bool,
    /// Serialize RPCs per server connection (one in flight at a time) while
    /// still fanning out across servers on threads — the PR 1 client, kept
    /// as the ablation baseline for transport pipelining.
    pub lockstep_rpc: bool,
    /// Per-request deadline. An RPC that exceeds it poisons its connection
    /// and surfaces [`DpfsError::Timeout`].
    pub rpc_timeout: Duration,
    /// Fault-tolerance policy: transient transport failures (connect,
    /// timeout, disconnect) are retried with backoff; application errors
    /// are not. [`RetryPolicy::disabled()`] restores fail-fast behaviour.
    pub retry: RetryPolicy,
    /// Accept partial reads: when a per-server read request fails
    /// terminally (after retries), zero-fill its byte ranges and surface
    /// [`DpfsError::Degraded`] — carrying the holed buffer and per-subfile
    /// outcomes — instead of failing the whole read. Off by default.
    pub degraded_reads: bool,
    /// On remote (metad-backed) mounts, cache file attrs and layouts
    /// client-side, generation-validated against the daemon. Embedded
    /// mounts ignore this (the catalog is already in-process).
    pub meta_cache: bool,
    /// How long stat-path attr reads may be served from the metadata
    /// cache without revalidation. Layout reads always revalidate, so
    /// this staleness window never reaches I/O. Zero = revalidate every
    /// lookup.
    pub meta_cache_ttl: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            combine: true,
            granularity: Granularity::Brick,
            list_io: true,
            rank: 0,
            serial_dispatch: false,
            lockstep_rpc: false,
            rpc_timeout: DEFAULT_RPC_TIMEOUT,
            retry: RetryPolicy::default(),
            degraded_reads: false,
            meta_cache: true,
            meta_cache_ttl: Duration::from_millis(500),
        }
    }
}

/// Client-side I/O statistics for one file handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Framed requests issued.
    pub requests: u64,
    /// Bytes received over the wire (including discarded brick padding).
    pub wire_read: u64,
    /// Bytes of received data actually used.
    pub useful_read: u64,
    /// Bytes sent over the wire.
    pub wire_written: u64,
}

/// Subfile name of replica copy `copy` (1-based) of `path`: copy `i` of
/// server `s`'s subfile lives on server `(s + i) % n` under this name.
/// The scheme is purely name-derived so every client (and fsck) can find
/// the mirrors without extra metadata rows.
pub fn mirror_subfile(path: &str, copy: usize) -> String {
    format!("{path}#r{copy}")
}

/// Subfile name of the XOR parity sibling of `path`, held by the last
/// server in the file's distribution: `parity[off]` is the XOR of every
/// data subfile's byte at `off` (absent bytes count as zero).
pub fn parity_subfile(path: &str) -> String {
    format!("{path}#p")
}

/// An open DPFS file.
pub struct FileHandle {
    path: String,
    meta: Arc<dyn MetaStore>,
    pool: Arc<ConnPool>,
    /// Server names in catalog order; request `server` indices point here.
    servers: Vec<String>,
    /// Performance numbers of `servers` (greedy extension needs them).
    perf: Vec<i64>,
    layout: Layout,
    map: BrickMap,
    placement: Placement,
    /// Per-file redundancy: mirrors / parity written alongside the data,
    /// read back around a dead server.
    redundancy: RedundancyPolicy,
    opts: ClientOptions,
    /// Current logical size in bytes.
    size: u64,
    stats: ClientStats,
    /// Optional client-side brick cache (extension; see [`crate::cache`]).
    cache: Option<BrickCache>,
    /// Bricks of sequential read-ahead (0 = off). Requires the cache.
    prefetch_bricks: u64,
    /// End offset of the last byte-API read (sequential-pattern detector).
    last_read_end: u64,
    /// Trace ID of the most recent traced operation on this handle.
    last_trace_id: u64,
}

impl FileHandle {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        path: String,
        meta: Arc<dyn MetaStore>,
        pool: Arc<ConnPool>,
        servers: Vec<String>,
        perf: Vec<i64>,
        layout: Layout,
        map: BrickMap,
        placement: Placement,
        redundancy: RedundancyPolicy,
        opts: ClientOptions,
        size: u64,
    ) -> FileHandle {
        FileHandle {
            path,
            meta,
            pool,
            servers,
            perf,
            layout,
            map,
            placement,
            redundancy,
            opts,
            size,
            stats: ClientStats::default(),
            cache: None,
            prefetch_bricks: 0,
            last_read_end: u64::MAX,
            last_trace_id: 0,
        }
    }

    /// The trace ID of the most recent read/write/sync on this handle
    /// (0 before the first operation). Filter [`trace::ring()`] events on it
    /// to see the operation's full client+server timeline.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// The file's DPFS path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The file's layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The file's level.
    pub fn level(&self) -> FileLevel {
        self.layout.level()
    }

    /// Current logical size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The brick-to-server map.
    pub fn brick_map(&self) -> &BrickMap {
        &self.map
    }

    /// The server names this file is striped over.
    pub fn servers(&self) -> &[String] {
        &self.servers
    }

    /// The file's redundancy policy.
    pub fn redundancy(&self) -> RedundancyPolicy {
        self.redundancy
    }

    /// I/O statistics accumulated on this handle.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Override client options (rank, combination) after open.
    pub fn set_options(&mut self, opts: ClientOptions) {
        self.opts = opts;
    }

    /// Enable a client-side brick cache of `capacity` bytes (0 disables).
    /// Only effective with [`Granularity::Brick`] reads, where whole bricks
    /// travel the wire anyway.
    pub fn enable_cache(&mut self, capacity: u64) {
        self.cache = if capacity == 0 {
            None
        } else {
            Some(BrickCache::new(capacity))
        };
    }

    /// `(hits, misses)` of the brick cache, if enabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Enable sequential read-ahead: when a byte-API read continues where
    /// the previous one ended, the next `bricks` bricks are fetched into
    /// the cache alongside it (extension; the paper relies on the server's
    /// local-FS prefetching only). Implies enabling the cache if it is off.
    pub fn enable_prefetch(&mut self, bricks: u64, cache_capacity: u64) {
        self.prefetch_bricks = bricks;
        if bricks > 0 && self.cache.is_none() {
            self.enable_cache(cache_capacity.max(1));
        }
    }

    // ---------------------------------------------------------- byte API

    /// Write `data` at byte `offset` (linear files only). Grows the file —
    /// and its brick distribution — as needed.
    pub fn write_bytes(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        let Layout::Linear(lin) = &self.layout else {
            return Err(DpfsError::WrongLevel {
                expected: "linear",
                actual: self.level().as_str().into(),
            });
        };
        if data.is_empty() {
            return Ok(());
        }
        let end = offset + data.len() as u64;
        let needed = bricks_for(end, lin.brick_bytes);
        if needed > self.map.num_bricks() {
            self.grow_to(needed)?;
        }
        let Layout::Linear(lin) = &self.layout else {
            unreachable!()
        };
        let runs = lin.map_bytes(offset, data.len() as u64, 0);
        self.execute_writes(&runs, data)?;
        if end > self.size {
            self.size = end;
            self.meta.set_file_size(&self.path, end as i64)?;
        }
        Ok(())
    }

    /// Read `len` bytes at `offset` (linear files only). Bytes past the
    /// written extent come back zero-filled.
    pub fn read_bytes(&mut self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let Layout::Linear(lin) = &self.layout else {
            return Err(DpfsError::WrongLevel {
                expected: "linear",
                actual: self.level().as_str().into(),
            });
        };
        let mut buf = vec![0u8; len as usize];
        if len == 0 {
            return Ok(buf);
        }
        let end = offset + len;
        if bricks_for(end, lin.brick_bytes) > self.map.num_bricks() {
            return Err(DpfsError::InvalidArgument(format!(
                "read [{offset}, {end}) beyond file's {} bricks",
                self.map.num_bricks()
            )));
        }
        let runs = lin.map_bytes(offset, len, 0);
        let sequential = offset == self.last_read_end;
        self.last_read_end = end;
        if let Err(e) = self.execute_reads(&runs, &mut buf) {
            return Err(attach_degraded_data(e, buf));
        }
        if sequential && self.prefetch_bricks > 0 {
            self.prefetch_after(end)?;
        }
        Ok(buf)
    }

    /// Fetch the next `prefetch_bricks` bricks after byte `end` into the
    /// cache (best effort: stops at end of file; skips cached bricks).
    fn prefetch_after(&mut self, end: u64) -> Result<()> {
        let Layout::Linear(lin) = &self.layout else {
            return Ok(());
        };
        let brick_bytes = lin.brick_bytes;
        let first = end.div_ceil(brick_bytes);
        let last = (first + self.prefetch_bricks).min(self.map.num_bricks());
        let Some(cache) = &self.cache else {
            return Ok(());
        };
        // Refill only when the window is exhausted (the very next brick is
        // uncached); a sliding one-brick-at-a-time refill would defeat
        // batching.
        if first >= last || cache.contains(first) {
            return Ok(());
        }
        let runs: Vec<BrickRun> = (first..last)
            .filter(|b| !cache.contains(*b))
            .map(|b| BrickRun {
                brick: b,
                brick_off: 0,
                buf_off: (b - first) * brick_bytes,
                len: brick_bytes,
            })
            .collect();
        if runs.is_empty() {
            return Ok(());
        }
        let total: u64 = runs.iter().map(|r| r.len).sum();
        let mut scratch = vec![0u8; ((last - first) * brick_bytes) as usize];
        let _ = total;
        match self.execute_reads(&runs, &mut scratch) {
            // Prefetch is best-effort: a degraded fetch cached whatever
            // arrived; don't fail the (already successful) foreground read.
            Err(DpfsError::Degraded { .. }) => Ok(()),
            other => other,
        }
    }

    // -------------------------------------------------------- region API

    /// Write a rectangular region of a multidim/array file. `data` holds
    /// the region packed row-major (`region.volume() * elem_bytes` bytes).
    pub fn write_region(&mut self, region: &Region, data: &[u8]) -> Result<()> {
        let runs = self.region_runs(region)?;
        let expect: u64 = runs.iter().map(|r| r.len).sum();
        if data.len() as u64 != expect {
            return Err(DpfsError::InvalidArgument(format!(
                "buffer of {} bytes for region of {} bytes",
                data.len(),
                expect
            )));
        }
        self.execute_writes(&runs, data)
    }

    /// Read a rectangular region of a multidim/array file, packed
    /// row-major.
    pub fn read_region(&mut self, region: &Region) -> Result<Vec<u8>> {
        let runs = self.region_runs(region)?;
        let len: u64 = runs.iter().map(|r| r.len).sum();
        let mut buf = vec![0u8; len as usize];
        if let Err(e) = self.execute_reads(&runs, &mut buf) {
            return Err(attach_degraded_data(e, buf));
        }
        Ok(buf)
    }

    fn region_runs(&self, region: &Region) -> Result<Vec<BrickRun>> {
        match &self.layout {
            Layout::Multidim(md) => md.map_region(region),
            Layout::Array(ar) => ar.map_region(region),
            Layout::Linear(_) => Err(DpfsError::WrongLevel {
                expected: "multidim or array",
                actual: "linear".into(),
            }),
        }
    }

    // ------------------------------------------------------ datatype API

    /// Write through a derived datatype anchored at byte `base` of a linear
    /// file. `data` packs the datatype's runs contiguously.
    pub fn write_datatype(&mut self, base: u64, dtype: &Datatype, data: &[u8]) -> Result<()> {
        if data.len() as u64 != dtype.size() {
            return Err(DpfsError::InvalidArgument(format!(
                "buffer of {} bytes for datatype of {} bytes",
                data.len(),
                dtype.size()
            )));
        }
        let mut buf_off = 0u64;
        // materialize runs then write as one planned batch
        let Layout::Linear(lin) = &self.layout else {
            return Err(DpfsError::WrongLevel {
                expected: "linear",
                actual: self.level().as_str().into(),
            });
        };
        let end = base + dtype.extent();
        let needed = bricks_for(end.max(1), lin.brick_bytes);
        if needed > self.map.num_bricks() {
            self.grow_to(needed)?;
        }
        let Layout::Linear(lin) = &self.layout else {
            unreachable!()
        };
        let mut runs = Vec::new();
        for (off, len) in dtype.flatten() {
            runs.extend(lin.map_bytes(base + off, len, buf_off));
            buf_off += len;
        }
        self.execute_writes(&runs, data)?;
        if end > self.size {
            self.size = end;
            self.meta.set_file_size(&self.path, end as i64)?;
        }
        Ok(())
    }

    /// Read through a derived datatype anchored at byte `base` of a linear
    /// file; returns the packed bytes.
    pub fn read_datatype(&mut self, base: u64, dtype: &Datatype) -> Result<Vec<u8>> {
        let Layout::Linear(lin) = &self.layout else {
            return Err(DpfsError::WrongLevel {
                expected: "linear",
                actual: self.level().as_str().into(),
            });
        };
        let end = base + dtype.extent();
        if bricks_for(end.max(1), lin.brick_bytes) > self.map.num_bricks() {
            return Err(DpfsError::InvalidArgument(
                "datatype extends beyond file".into(),
            ));
        }
        let mut buf = vec![0u8; dtype.size() as usize];
        let mut runs = Vec::new();
        let mut buf_off = 0u64;
        for (off, len) in dtype.flatten() {
            runs.extend(lin.map_bytes(base + off, len, buf_off));
            buf_off += len;
        }
        if let Err(e) = self.execute_reads(&runs, &mut buf) {
            return Err(attach_degraded_data(e, buf));
        }
        Ok(buf)
    }

    // --------------------------------------------------------- chunk API

    /// The rectangular region of HPF chunk `rank` (array files with pure
    /// BLOCK/`*` patterns; cyclic chunks have no bounding rectangle).
    pub fn chunk_region(&self, rank: u64) -> Result<Region> {
        match &self.layout {
            Layout::Array(ar) => {
                if rank >= ar.num_bricks() {
                    return Err(DpfsError::InvalidArgument(format!(
                        "chunk {rank} of {}",
                        ar.num_bricks()
                    )));
                }
                ar.chunk_region(rank).ok_or_else(|| {
                    DpfsError::InvalidArgument(
                        "cyclic chunks are not rectangular; use write_chunk/read_chunk".into(),
                    )
                })
            }
            other => Err(DpfsError::WrongLevel {
                expected: "array",
                actual: other.level().as_str().into(),
            }),
        }
    }

    /// Write processor `rank`'s whole chunk (array files): the checkpoint
    /// pattern of paper §3.3 — one brick, one request. `data` is the
    /// processor's HPF *local array*, packed row-major (for pure-BLOCK
    /// patterns that equals the chunk's rectangular region).
    pub fn write_chunk(&mut self, rank: u64, data: &[u8]) -> Result<()> {
        let len = self.chunk_check(rank, data.len() as u64)?;
        let runs = [BrickRun {
            brick: rank,
            brick_off: 0,
            buf_off: 0,
            len,
        }];
        self.execute_writes(&runs, data)
    }

    /// Read processor `rank`'s whole chunk back (the local array bytes).
    pub fn read_chunk(&mut self, rank: u64) -> Result<Vec<u8>> {
        let len = match &self.layout {
            Layout::Array(ar) if rank < ar.num_bricks() => ar.chunk_len(rank),
            Layout::Array(ar) => {
                return Err(DpfsError::InvalidArgument(format!(
                    "chunk {rank} of {}",
                    ar.num_bricks()
                )))
            }
            other => {
                return Err(DpfsError::WrongLevel {
                    expected: "array",
                    actual: other.level().as_str().into(),
                })
            }
        };
        let mut buf = vec![0u8; len as usize];
        let runs = [BrickRun {
            brick: rank,
            brick_off: 0,
            buf_off: 0,
            len,
        }];
        if let Err(e) = self.execute_reads(&runs, &mut buf) {
            return Err(attach_degraded_data(e, buf));
        }
        Ok(buf)
    }

    fn chunk_check(&self, rank: u64, data_len: u64) -> Result<u64> {
        let Layout::Array(ar) = &self.layout else {
            return Err(DpfsError::WrongLevel {
                expected: "array",
                actual: self.level().as_str().into(),
            });
        };
        if rank >= ar.num_bricks() {
            return Err(DpfsError::InvalidArgument(format!(
                "chunk {rank} of {}",
                ar.num_bricks()
            )));
        }
        let len = ar.chunk_len(rank);
        if data_len != len {
            return Err(DpfsError::InvalidArgument(format!(
                "chunk {rank} is {len} bytes, buffer has {data_len}"
            )));
        }
        Ok(len)
    }

    // -------------------------------------------------------- execution

    fn execute_writes(&mut self, runs: &[BrickRun], data: &[u8]) -> Result<()> {
        let trace_id = trace::sampled_trace_id();
        self.last_trace_id = trace_id;
        let op_start = trace::now_ns();
        if let Some(cache) = &mut self.cache {
            for r in runs {
                cache.invalidate(r.brick);
            }
        }
        // List I/O: coalesce in subfile space and ship a pattern descriptor
        // (or the legacy shape, per request, when the descriptor would be
        // larger). `plan_list` declines self-overlapping runs — those keep
        // the legacy planner's in-order overlap semantics.
        if self.opts.combine && self.opts.list_io {
            // Writes always use exact ranges: whole-brick granularity
            // would clobber bytes the caller never supplied.
            if let Some(reqs) = plan_list(
                runs,
                &self.map,
                &self.layout,
                Granularity::Exact,
                self.opts.rank,
            ) {
                return self.execute_writes_list(&reqs, data, trace_id, op_start);
            }
        }
        let reqs = plan_writes(
            runs,
            &self.map,
            &self.layout,
            self.opts.combine,
            self.opts.rank,
        );
        // Slice each request's payload out of `data` up front, so issuing
        // only touches owned message buffers. `Bytes` payloads are
        // refcounted, so replica fan-out below reuses them without copying.
        let payloads: Vec<Vec<(u64, Bytes)>> = reqs
            .iter()
            .map(|req| {
                req.ranges
                    .iter()
                    .map(|&(sub_off, buf_off, len)| {
                        (
                            sub_off,
                            Bytes::copy_from_slice(
                                &data[buf_off as usize..(buf_off + len) as usize],
                            ),
                        )
                    })
                    .collect()
            })
            .collect();
        let mut work: Vec<(&str, Request)> = Vec::with_capacity(reqs.len());
        // `(server index, expected Written bytes)` parallel to `work`.
        let mut expect: Vec<(usize, u64)> = Vec::with_capacity(reqs.len());
        for (req, ranges) in reqs.iter().zip(&payloads) {
            work.push((
                self.servers[req.server].as_str(),
                Request::Write {
                    subfile: self.path.clone(),
                    ranges: ranges.clone(),
                },
            ));
            expect.push((req.server, req.wire_bytes()));
        }
        if let RedundancyPolicy::Replica(k) = self.redundancy {
            // Copy `i` of server `s`'s subfile rides on server
            // `(s + i) % n` under the mirror name, same byte offsets —
            // one extra Write per copy in the same pipelined dispatch.
            let n = self.servers.len();
            for copy in 1..k {
                for (req, ranges) in reqs.iter().zip(&payloads) {
                    let mirror = (req.server + copy) % n;
                    work.push((
                        self.servers[mirror].as_str(),
                        Request::Write {
                            subfile: mirror_subfile(&self.path, copy),
                            ranges: ranges.clone(),
                        },
                    ));
                    expect.push((mirror, req.wire_bytes()));
                }
            }
        }
        trace::client_event(
            trace_id,
            "plan",
            "write",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            data.len() as u64,
        );
        let results = issue(&self.pool, &self.opts, true, work, trace_id);
        for (&(server, expected), res) in expect.iter().zip(results) {
            self.stats.requests += 1;
            let written = expect_written(res?)?;
            if written != expected {
                return Err(DpfsError::ShortWrite {
                    server: self.servers[server].clone(),
                    expected,
                    written,
                });
            }
            self.stats.wire_written += expected;
        }
        if self.redundancy == RedundancyPolicy::XorParity {
            let touched: Vec<(u64, u64)> = reqs
                .iter()
                .flat_map(|r| r.ranges.iter().map(|&(sub_off, _, len)| (sub_off, len)))
                .collect();
            self.write_parity(&touched, trace_id)?;
        }
        trace::client_event(
            trace_id,
            "op",
            "write",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            data.len() as u64,
        );
        Ok(())
    }

    /// List-I/O write path: one request per server carrying one coalesced
    /// payload. The per-request cost model picks the wire shape —
    /// `WriteList` with a pattern descriptor, or legacy `Write` over the
    /// same coalesced ranges when the descriptor would be larger.
    /// Redundancy fans the same refcounted payloads out to mirrors and
    /// keeps parity byte-exact.
    fn execute_writes_list(
        &mut self,
        reqs: &[ListRequest],
        data: &[u8],
        trace_id: u64,
        op_start: u64,
    ) -> Result<()> {
        // Gather each request's payload out of `data` up front (the pieces
        // map buffer bytes to payload offsets). `Bytes` payloads are
        // refcounted: replica fan-out and legacy-shape slicing below reuse
        // them without copying.
        let payloads: Vec<Bytes> = reqs
            .iter()
            .map(|req| {
                let mut payload = vec![0u8; req.wire_bytes() as usize];
                for p in &req.pieces {
                    payload[p.payload_off as usize..(p.payload_off + p.len) as usize]
                        .copy_from_slice(&data[p.buf_off as usize..(p.buf_off + p.len) as usize]);
                }
                Bytes::from(payload)
            })
            .collect();
        let shaped: Vec<ListShape> = reqs.iter().map(list_shape).collect();
        let request_for =
            |req: &ListRequest, shape: &ListShape, payload: &Bytes, subfile: String| match shape {
                ListShape::Pattern(pattern) => Request::WriteList {
                    subfile,
                    pattern: pattern.clone(),
                    payload: payload.clone(),
                },
                ListShape::Legacy => {
                    let mut at = 0usize;
                    let ranges = req
                        .ranges
                        .iter()
                        .map(|&(off, len)| {
                            let slice = payload.slice(at..at + len as usize);
                            at += len as usize;
                            (off, slice)
                        })
                        .collect();
                    Request::Write { subfile, ranges }
                }
            };
        let mut work: Vec<(&str, Request)> = Vec::with_capacity(reqs.len());
        let mut expect: Vec<(usize, u64)> = Vec::with_capacity(reqs.len());
        for ((req, shape), payload) in reqs.iter().zip(&shaped).zip(&payloads) {
            work.push((
                self.servers[req.server].as_str(),
                request_for(req, shape, payload, self.path.clone()),
            ));
            expect.push((req.server, req.wire_bytes()));
        }
        if let RedundancyPolicy::Replica(k) = self.redundancy {
            let n = self.servers.len();
            for copy in 1..k {
                for ((req, shape), payload) in reqs.iter().zip(&shaped).zip(&payloads) {
                    let mirror = (req.server + copy) % n;
                    work.push((
                        self.servers[mirror].as_str(),
                        request_for(req, shape, payload, mirror_subfile(&self.path, copy)),
                    ));
                    expect.push((mirror, req.wire_bytes()));
                }
            }
        }
        trace::client_event(
            trace_id,
            "plan",
            "write",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            data.len() as u64,
        );
        let results = issue(&self.pool, &self.opts, true, work, trace_id);
        for (&(server, expected), res) in expect.iter().zip(results) {
            self.stats.requests += 1;
            let written = expect_written(res?)?;
            if written != expected {
                return Err(DpfsError::ShortWrite {
                    server: self.servers[server].clone(),
                    expected,
                    written,
                });
            }
            self.stats.wire_written += expected;
        }
        if self.redundancy == RedundancyPolicy::XorParity {
            let touched: Vec<(u64, u64)> =
                reqs.iter().flat_map(|r| r.ranges.iter().copied()).collect();
            self.write_parity(&touched, trace_id)?;
        }
        trace::client_event(
            trace_id,
            "op",
            "write",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            data.len() as u64,
        );
        Ok(())
    }

    /// Bring the parity subfile up to date after a data write: re-read the
    /// freshly-written subfile-offset ranges from *every* data server
    /// (reads past a subfile's extent come back zero-filled, so short and
    /// absent subfiles contribute zeros), XOR them together, and write the
    /// result to the parity server. Recomputing from the data — instead of
    /// delta-XORing old vs new bytes — needs no read-before-write ordering
    /// and self-heals any previously stale parity range it touches.
    /// `touched` is the `(subfile_offset, len)` ranges the write dirtied,
    /// in any order, overlap allowed.
    fn write_parity(&mut self, touched: &[(u64, u64)], trace_id: u64) -> Result<()> {
        // Union of touched subfile-offset ranges across all data servers:
        // parity[off] covers byte `off` of every data subfile, so exactly
        // these ranges went stale.
        let mut spans: Vec<(u64, u64)> = touched
            .iter()
            .map(|&(sub_off, len)| (sub_off, sub_off + len))
            .collect();
        spans.sort_unstable();
        let mut union: Vec<(u64, u64)> = Vec::new(); // (offset, len)
        for (start, end) in spans {
            match union.last_mut() {
                Some((off, len)) if start <= *off + *len => {
                    *len = (*off + *len).max(end) - *off;
                }
                _ => union.push((start, end - start)),
            }
        }
        if union.is_empty() {
            return Ok(());
        }
        let data_servers = self.servers.len() - 1;
        let work: Vec<(&str, Request)> = self.servers[..data_servers]
            .iter()
            .map(|server| {
                (
                    server.as_str(),
                    Request::Read {
                        subfile: self.path.clone(),
                        ranges: union.clone(),
                    },
                )
            })
            .collect();
        let results = issue(&self.pool, &self.opts, true, work, trace_id);
        let mut acc: Vec<Vec<u8>> = union
            .iter()
            .map(|&(_, len)| vec![0u8; len as usize])
            .collect();
        for (i, res) in results.into_iter().enumerate() {
            let chunks = expect_chunks(res?, &union, &self.servers[i])?;
            self.stats.requests += 1;
            for (a, chunk) in acc.iter_mut().zip(&chunks) {
                self.stats.wire_read += chunk.len() as u64;
                for (ab, cb) in a.iter_mut().zip(chunk.iter()) {
                    *ab ^= cb;
                }
            }
        }
        let parity_server = self.servers[data_servers].clone();
        let expected: u64 = union.iter().map(|&(_, len)| len).sum();
        let ranges: Vec<(u64, Bytes)> = union
            .iter()
            .zip(acc)
            .map(|(&(off, _), bytes)| (off, Bytes::from(bytes)))
            .collect();
        let resp = self.pool.rpc(
            &parity_server,
            &Request::Write {
                subfile: parity_subfile(&self.path),
                ranges,
            },
        )?;
        self.stats.requests += 1;
        let written = expect_written(resp)?;
        if written != expected {
            return Err(DpfsError::ShortWrite {
                server: parity_server,
                expected,
                written,
            });
        }
        self.stats.wire_written += expected;
        Ok(())
    }

    /// Re-materialize the exact bytes lost `server` owed for `ranges`,
    /// using the file's redundancy: the first answering mirror copy under
    /// `Replica(k)`, or the XOR of every surviving data subfile plus the
    /// parity subfile under `XorParity`. Always speaks legacy `Read` —
    /// reconstruction wants one chunk per range back, byte-exact, and the
    /// degraded path is not the one to optimize wire bytes on.
    fn reconstruct_ranges(
        &self,
        server: usize,
        ranges: &[(u64, u64)],
        trace_id: u64,
    ) -> Result<Vec<Bytes>> {
        let n = self.servers.len();
        match self.redundancy {
            RedundancyPolicy::None => Err(DpfsError::InvalidArgument(
                "reconstruct on an unprotected file".into(),
            )),
            RedundancyPolicy::Replica(k) => {
                let mut last_err = None;
                for copy in 1..k {
                    let mirror = &self.servers[(server + copy) % n];
                    let resp = self.pool.rpc(
                        mirror,
                        &Request::Read {
                            subfile: mirror_subfile(&self.path, copy),
                            ranges: ranges.to_vec(),
                        },
                    );
                    match resp.and_then(|r| expect_chunks(r, ranges, mirror)) {
                        Ok(chunks) => return Ok(chunks),
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(last_err.expect("replica policy has k >= 2"))
            }
            RedundancyPolicy::XorParity => {
                let data_servers = n - 1;
                // Same byte ranges from every surviving data subfile and
                // the parity subfile, XORed together: parity's definition
                // solved for the missing term.
                let peers: Vec<(&str, Request)> = (0..data_servers)
                    .filter(|&d| d != server)
                    .map(|d| {
                        (
                            self.servers[d].as_str(),
                            Request::Read {
                                subfile: self.path.clone(),
                                ranges: ranges.to_vec(),
                            },
                        )
                    })
                    .chain(std::iter::once((
                        self.servers[data_servers].as_str(),
                        Request::Read {
                            subfile: parity_subfile(&self.path),
                            ranges: ranges.to_vec(),
                        },
                    )))
                    .collect();
                let names: Vec<usize> = (0..data_servers)
                    .filter(|&d| d != server)
                    .chain(std::iter::once(data_servers))
                    .collect();
                let results = issue(&self.pool, &self.opts, true, peers, trace_id);
                let mut acc: Vec<Vec<u8>> = ranges
                    .iter()
                    .map(|&(_, len)| vec![0u8; len as usize])
                    .collect();
                for (&peer, res) in names.iter().zip(results) {
                    let chunks = expect_chunks(res?, ranges, &self.servers[peer])?;
                    for (a, chunk) in acc.iter_mut().zip(&chunks) {
                        for (ab, cb) in a.iter_mut().zip(chunk.iter()) {
                            *ab ^= cb;
                        }
                    }
                }
                Ok(acc.into_iter().map(Bytes::from).collect())
            }
        }
    }

    fn execute_reads(&mut self, runs: &[BrickRun], buf: &mut [u8]) -> Result<()> {
        let trace_id = trace::sampled_trace_id();
        self.last_trace_id = trace_id;
        let op_start = trace::now_ns();
        // Serve runs whose bricks are cached locally; fetch the rest.
        let mut remaining: Vec<BrickRun> = Vec::with_capacity(runs.len());
        if let (Some(cache), Granularity::Brick) = (&mut self.cache, self.opts.granularity) {
            for r in runs {
                match cache.get(r.brick) {
                    Some(data) => {
                        let src = &data[r.brick_off as usize..(r.brick_off + r.len) as usize];
                        buf[r.buf_off as usize..(r.buf_off + r.len) as usize].copy_from_slice(src);
                        self.stats.useful_read += r.len;
                    }
                    None => remaining.push(*r),
                }
            }
            if remaining.is_empty() {
                trace::client_event(
                    trace_id,
                    "op",
                    "read",
                    "",
                    op_start,
                    trace::now_ns().saturating_sub(op_start),
                    buf.len() as u64,
                );
                return Ok(());
            }
        } else {
            remaining.extend_from_slice(runs);
        }
        let runs = remaining.as_slice();
        // List I/O: ship the access pattern, not the brick list. Gated on
        // the cache being off — cache fills need the per-brick chunks only
        // the legacy shape returns — and declined by `plan_list` for
        // self-overlapping runs.
        if self.opts.combine && self.opts.list_io && self.cache.is_none() {
            if let Some(reqs) = plan_list(
                runs,
                &self.map,
                &self.layout,
                self.opts.granularity,
                self.opts.rank,
            ) {
                return self.execute_reads_list(&reqs, buf, trace_id, op_start);
            }
        }
        let reqs = plan_reads(
            runs,
            &self.map,
            &self.layout,
            self.opts.combine,
            self.opts.granularity,
            self.opts.rank,
        );
        // Put every request on the wire, then scatter each server's chunks
        // into `buf` as completions arrive (collect-then-scatter keeps the
        // hot buffer single-writer).
        let work: Vec<(&str, Request)> = reqs
            .iter()
            .map(|req| {
                (
                    self.servers[req.server].as_str(),
                    Request::Read {
                        subfile: self.path.clone(),
                        ranges: req.ranges.clone(),
                    },
                )
            })
            .collect();
        trace::client_event(
            trace_id,
            "plan",
            "read",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            buf.len() as u64,
        );
        // With degraded reads on, every server must be attempted even in
        // serial mode — a failed one becomes a hole, not an early exit.
        // Likewise on a redundant file, where a failed server becomes a
        // reconstruction, not an error.
        let stop_at_first_error =
            !self.opts.degraded_reads && self.redundancy == RedundancyPolicy::None;
        let results = issue(&self.pool, &self.opts, stop_at_first_error, work, trace_id);
        let mut outcomes: Vec<SubfileOutcome> = Vec::new();
        for (req, res) in reqs.iter().zip(results) {
            match res {
                Ok(resp) => {
                    let chunks = expect_chunks(resp, &req.ranges, &self.servers[req.server])?;
                    self.stats.requests += 1;
                    self.stats.wire_read += req.wire_bytes();
                    for piece in &req.scatter {
                        let chunk = &chunks[piece.chunk];
                        let src = &chunk
                            [piece.chunk_off as usize..(piece.chunk_off + piece.len) as usize];
                        buf[piece.buf_off as usize..(piece.buf_off + piece.len) as usize]
                            .copy_from_slice(src);
                        self.stats.useful_read += piece.len;
                    }
                    if let Some(cache) = &mut self.cache {
                        for (i, &brick) in req.bricks.iter().enumerate() {
                            cache.insert(brick, chunks[i].clone());
                        }
                    }
                }
                // Transport-class failure on a redundant file: read
                // *around* the lost server first — the surviving mirror or
                // the XOR of peers + parity rebuilds the exact bytes, so
                // the caller sees neither holes nor a `Degraded` outcome.
                Err(err)
                    if self.redundancy != RedundancyPolicy::None
                        && RetryPolicy::retryable(&err) =>
                {
                    let t0 = trace::now_ns();
                    match self.reconstruct_ranges(req.server, &req.ranges, trace_id) {
                        Ok(chunks) => {
                            let server = &self.servers[req.server];
                            self.stats.requests += 1;
                            self.stats.wire_read += req.wire_bytes();
                            let mut bytes = 0u64;
                            for piece in &req.scatter {
                                let chunk = &chunks[piece.chunk];
                                let src = &chunk[piece.chunk_off as usize
                                    ..(piece.chunk_off + piece.len) as usize];
                                buf[piece.buf_off as usize..(piece.buf_off + piece.len) as usize]
                                    .copy_from_slice(src);
                                self.stats.useful_read += piece.len;
                                bytes += piece.len;
                            }
                            self.pool.note_reconstruct(server);
                            trace::client_event(
                                trace_id,
                                "reconstruct",
                                "read",
                                server,
                                t0,
                                trace::now_ns().saturating_sub(t0),
                                bytes,
                            );
                            if let Some(cache) = &mut self.cache {
                                for (i, &brick) in req.bricks.iter().enumerate() {
                                    cache.insert(brick, chunks[i].clone());
                                }
                            }
                        }
                        // Reconstruction itself failed (a second server
                        // down): fall back to the zero-fill contract if the
                        // caller opted in, else surface the original error.
                        Err(rec_err) if self.opts.degraded_reads => {
                            let server = &self.servers[req.server];
                            let mut bytes = 0u64;
                            for piece in &req.scatter {
                                buf[piece.buf_off as usize..(piece.buf_off + piece.len) as usize]
                                    .fill(0);
                                bytes += piece.len;
                            }
                            self.stats.requests += 1;
                            self.pool.note_degraded(server);
                            trace::client_event(
                                trace_id,
                                "degraded",
                                "read",
                                server,
                                trace::now_ns(),
                                0,
                                bytes,
                            );
                            outcomes.push(SubfileOutcome {
                                server: server.clone(),
                                bytes,
                                error: rec_err.to_string(),
                            });
                        }
                        Err(_) => return Err(err),
                    }
                }
                // Transport-class failure after retries on an unprotected
                // file: zero-fill the ranges this server owed us and carry
                // on. Application errors still fail the read — the server
                // processed the request and said no.
                Err(err) if self.opts.degraded_reads && RetryPolicy::retryable(&err) => {
                    let server = &self.servers[req.server];
                    let mut bytes = 0u64;
                    for piece in &req.scatter {
                        buf[piece.buf_off as usize..(piece.buf_off + piece.len) as usize].fill(0);
                        bytes += piece.len;
                    }
                    self.stats.requests += 1;
                    self.pool.note_degraded(server);
                    trace::client_event(
                        trace_id,
                        "degraded",
                        "read",
                        server,
                        trace::now_ns(),
                        0,
                        bytes,
                    );
                    outcomes.push(SubfileOutcome {
                        server: server.clone(),
                        bytes,
                        error: err.to_string(),
                    });
                }
                Err(err) => return Err(err),
            }
        }
        trace::client_event(
            trace_id,
            "op",
            "read",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            buf.len() as u64,
        );
        if outcomes.is_empty() {
            Ok(())
        } else {
            // The byte-returning wrappers attach the holed buffer.
            Err(DpfsError::Degraded {
                op: "read",
                data: Vec::new(),
                outcomes,
            })
        }
    }

    /// List-I/O read path: one request per server, answered with one
    /// coalesced payload that the pieces scatter into `buf`. Wire shape
    /// per the cost model; reconstruction and degraded holes match the
    /// legacy path byte-for-byte.
    fn execute_reads_list(
        &mut self,
        reqs: &[ListRequest],
        buf: &mut [u8],
        trace_id: u64,
        op_start: u64,
    ) -> Result<()> {
        let shaped: Vec<ListShape> = reqs.iter().map(list_shape).collect();
        let work: Vec<(&str, Request)> = reqs
            .iter()
            .zip(&shaped)
            .map(|(req, shape)| {
                let r = match shape {
                    ListShape::Pattern(pattern) => Request::ReadList {
                        subfile: self.path.clone(),
                        pattern: pattern.clone(),
                    },
                    ListShape::Legacy => Request::Read {
                        subfile: self.path.clone(),
                        ranges: req.ranges.clone(),
                    },
                };
                (self.servers[req.server].as_str(), r)
            })
            .collect();
        trace::client_event(
            trace_id,
            "plan",
            "read",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            buf.len() as u64,
        );
        let stop_at_first_error =
            !self.opts.degraded_reads && self.redundancy == RedundancyPolicy::None;
        let results = issue(&self.pool, &self.opts, stop_at_first_error, work, trace_id);
        let mut outcomes: Vec<SubfileOutcome> = Vec::new();
        for ((req, shape), res) in reqs.iter().zip(&shaped).zip(results) {
            match res {
                Ok(resp) => {
                    let server = &self.servers[req.server];
                    match shape {
                        ListShape::Pattern(_) => {
                            let data = expect_list_data(resp, req.wire_bytes(), server)?;
                            for p in &req.pieces {
                                let src =
                                    &data[p.payload_off as usize..(p.payload_off + p.len) as usize];
                                buf[p.buf_off as usize..(p.buf_off + p.len) as usize]
                                    .copy_from_slice(src);
                            }
                        }
                        ListShape::Legacy => {
                            let chunks = expect_chunks(resp, &req.ranges, server)?;
                            scatter_list_pieces(req, &chunks, buf);
                        }
                    }
                    self.stats.requests += 1;
                    self.stats.wire_read += req.wire_bytes();
                    self.stats.useful_read += req.useful_bytes();
                }
                // Transport-class failure on a redundant file: rebuild the
                // lost server's ranges from mirrors / XOR peers + parity
                // (over legacy `Read`) and scatter as if it had answered.
                Err(err)
                    if self.redundancy != RedundancyPolicy::None
                        && RetryPolicy::retryable(&err) =>
                {
                    let t0 = trace::now_ns();
                    match self.reconstruct_ranges(req.server, &req.ranges, trace_id) {
                        Ok(chunks) => {
                            let server = &self.servers[req.server];
                            scatter_list_pieces(req, &chunks, buf);
                            self.stats.requests += 1;
                            self.stats.wire_read += req.wire_bytes();
                            self.stats.useful_read += req.useful_bytes();
                            self.pool.note_reconstruct(server);
                            trace::client_event(
                                trace_id,
                                "reconstruct",
                                "read",
                                server,
                                t0,
                                trace::now_ns().saturating_sub(t0),
                                req.useful_bytes(),
                            );
                        }
                        Err(rec_err) if self.opts.degraded_reads => {
                            let server = &self.servers[req.server];
                            let bytes = zero_fill_list_pieces(req, buf);
                            self.stats.requests += 1;
                            self.pool.note_degraded(server);
                            trace::client_event(
                                trace_id,
                                "degraded",
                                "read",
                                server,
                                trace::now_ns(),
                                0,
                                bytes,
                            );
                            outcomes.push(SubfileOutcome {
                                server: server.clone(),
                                bytes,
                                error: rec_err.to_string(),
                            });
                        }
                        Err(_) => return Err(err),
                    }
                }
                Err(err) if self.opts.degraded_reads && RetryPolicy::retryable(&err) => {
                    let server = &self.servers[req.server];
                    let bytes = zero_fill_list_pieces(req, buf);
                    self.stats.requests += 1;
                    self.pool.note_degraded(server);
                    trace::client_event(
                        trace_id,
                        "degraded",
                        "read",
                        server,
                        trace::now_ns(),
                        0,
                        bytes,
                    );
                    outcomes.push(SubfileOutcome {
                        server: server.clone(),
                        bytes,
                        error: err.to_string(),
                    });
                }
                Err(err) => return Err(err),
            }
        }
        trace::client_event(
            trace_id,
            "op",
            "read",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            buf.len() as u64,
        );
        if outcomes.is_empty() {
            Ok(())
        } else {
            Err(DpfsError::Degraded {
                op: "read",
                data: Vec::new(),
                outcomes,
            })
        }
    }

    /// Grow a linear file's brick map to `needed` bricks, persisting the new
    /// brick lists to the catalog.
    fn grow_to(&mut self, needed: u64) -> Result<()> {
        let extra = needed - self.map.num_bricks();
        match self.placement {
            Placement::RoundRobin => self.map.extend(extra, None),
            Placement::Greedy => self.map.extend(extra, Some(&self.perf)),
        }
        if let Layout::Linear(lin) = &mut self.layout {
            lin.file_bytes = lin.file_bytes.max(needed * lin.brick_bytes);
        }
        let mut dist: Vec<Distribution> = self
            .servers
            .iter()
            .zip(self.map.bricklists())
            .map(|(server, bricks)| Distribution {
                server: server.clone(),
                filename: self.path.clone(),
                bricklist: bricks.iter().map(|&b| b as i64).collect(),
            })
            .collect();
        if self.redundancy == RedundancyPolicy::XorParity {
            // The brick map covers only the data servers; re-append the
            // brickless parity row the zip above dropped.
            dist.push(Distribution {
                server: self.servers.last().expect("xor parity has servers").clone(),
                filename: self.path.clone(),
                bricklist: Vec::new(),
            });
        }
        self.meta.update_distribution(&self.path, &dist)?;
        Ok(())
    }

    /// Ask every server holding this file to flush its subfile. Every
    /// server is attempted even when some fail — one dead server must not
    /// leave the others' subfiles unflushed — and the failures come back
    /// aggregated in a single [`DpfsError::Aggregate`].
    pub fn sync(&mut self) -> Result<()> {
        let trace_id = trace::sampled_trace_id();
        self.last_trace_id = trace_id;
        let op_start = trace::now_ns();
        // Every subfile this file materialises, per server: primaries,
        // each server's mirror copies, and the parity sibling. (A server
        // answers Pong for a subfile it never created.)
        let n = self.servers.len();
        let mut targets: Vec<(usize, String)> = Vec::new();
        match self.redundancy {
            RedundancyPolicy::None => {
                targets.extend((0..n).map(|s| (s, self.path.clone())));
            }
            RedundancyPolicy::Replica(k) => {
                for s in 0..n {
                    targets.push((s, self.path.clone()));
                    for copy in 1..k {
                        targets.push(((s + copy) % n, mirror_subfile(&self.path, copy)));
                    }
                }
            }
            RedundancyPolicy::XorParity => {
                targets.extend((0..n - 1).map(|s| (s, self.path.clone())));
                targets.push((n - 1, parity_subfile(&self.path)));
            }
        }
        let work: Vec<(&str, Request)> = targets
            .iter()
            .map(|(server, subfile)| {
                (
                    self.servers[*server].as_str(),
                    Request::Sync {
                        subfile: subfile.clone(),
                    },
                )
            })
            .collect();
        trace::client_event(
            trace_id,
            "plan",
            "sync",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            0,
        );
        // `stop_at_first_error = false`: every server is attempted even in
        // serial mode.
        let results = issue(&self.pool, &self.opts, false, work, trace_id);
        let failures: Vec<(String, DpfsError)> = targets
            .iter()
            .zip(results)
            .filter_map(|((server, _), res)| {
                let err = match res {
                    Ok(Response::Error { code, message }) => {
                        Some(DpfsError::Server { code, message })
                    }
                    Ok(_) => None,
                    Err(e) => Some(e),
                };
                err.map(|e| (self.servers[*server].clone(), e))
            })
            .collect();
        trace::client_event(
            trace_id,
            "op",
            "sync",
            "",
            op_start,
            trace::now_ns().saturating_sub(op_start),
            0,
        );
        if failures.is_empty() {
            Ok(())
        } else {
            Err(DpfsError::Aggregate {
                op: "sync",
                failures,
            })
        }
    }

    /// Close the handle, persisting the final size. (Dropping the handle
    /// also works; `close` surfaces errors.)
    pub fn close(self) -> Result<()> {
        self.meta.set_file_size(&self.path, self.size as i64)?;
        Ok(())
    }
}

/// Issue one request per planned item, returning raw responses in plan
/// order.
///
/// - **Pipelined** (default): every frame goes on the wire first — the
///   transport assigns correlation IDs and the per-server demux thread
///   completes them out of order — then completions are collected in plan
///   order. One slow server no longer stalls requests to the others, and
///   multiple requests to *one* server overlap inside its connection.
/// - **Serial** (`serial_dispatch`): the original one-request-at-a-time
///   client loop, stopping at the first failure when `stop_at_first_error`
///   (the `Err` is then the final element).
/// - **Lockstep** (`lockstep_rpc`): the PR 1 baseline — a scoped thread per
///   request, but each server connection carries at most one in-flight RPC
///   (the transport's lockstep gate is held across the round-trip).
fn issue(
    pool: &ConnPool,
    opts: &ClientOptions,
    stop_at_first_error: bool,
    work: Vec<(&str, Request)>,
    trace_id: u64,
) -> Vec<Result<Response>> {
    let kind = work
        .first()
        .map(|(_, req)| req.kind_str())
        .unwrap_or("other");
    let t0 = trace::now_ns();
    if opts.serial_dispatch {
        let timeout = opts.rpc_timeout;
        let mut out = Vec::with_capacity(work.len());
        for (server, req) in work {
            // Same round-trip as `ConnPool::rpc`, with the trace stamped;
            // lockstep_rpc additionally holds the per-server gate (and
            // stays retry-free: it is the PR 1 ablation baseline).
            let res = if opts.lockstep_rpc {
                pool.rpc_lockstep_traced(server, &req, trace_id)
            } else {
                let first = pool
                    .submit_traced(server, &req, trace_id)
                    .and_then(|pending| pending.wait(timeout));
                retry_if_transient(pool, opts, server, &req, trace_id, first)
            };
            let failed = res.is_err();
            out.push(res);
            if failed && stop_at_first_error {
                break;
            }
        }
        // Serial dispatch interleaves submission and waiting; the whole
        // loop is one await span.
        trace::client_event(
            trace_id,
            "await",
            kind,
            "",
            t0,
            trace::now_ns().saturating_sub(t0),
            0,
        );
        out
    } else if opts.lockstep_rpc {
        let out = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .into_iter()
                .map(|(server, req)| {
                    scope.spawn(move || pool.rpc_lockstep_traced(server, &req, trace_id))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("dispatch thread panicked"))
                .collect()
        });
        trace::client_event(
            trace_id,
            "await",
            kind,
            "",
            t0,
            trace::now_ns().saturating_sub(t0),
            0,
        );
        out
    } else {
        let timeout = opts.rpc_timeout;
        // Keep each request alongside its pending completion: a waiter
        // that fails with a transient error reissues the request itself
        // (the other servers' responses keep arriving meanwhile).
        let submitted: Vec<_> = work
            .into_iter()
            .map(|(server, req)| {
                let pending = pool.submit_traced(server, &req, trace_id);
                (server, req, pending)
            })
            .collect();
        let t1 = trace::now_ns();
        trace::client_event(trace_id, "submit", kind, "", t0, t1.saturating_sub(t0), 0);
        let out = submitted
            .into_iter()
            .map(|(server, req, pending)| {
                let first = pending.and_then(|pending| pending.wait(timeout));
                retry_if_transient(pool, opts, server, &req, trace_id, first)
            })
            .collect();
        trace::client_event(
            trace_id,
            "await",
            kind,
            "",
            t1,
            trace::now_ns().saturating_sub(t1),
            0,
        );
        out
    }
}

/// The wire shape the cost model picked for one list request.
enum ListShape {
    /// Compact descriptor: `ReadList` / `WriteList`.
    Pattern(AccessPattern),
    /// Irregular access — the descriptor would encode no smaller than the
    /// enumerated range list; ship legacy `Read` / `Write` over the same
    /// coalesced ranges.
    Legacy,
}

/// The cost model: a pattern descriptor pays off iff it encodes smaller
/// than the legacy enumerated range list (`u32` count + 16 bytes per
/// range).
fn list_shape(req: &ListRequest) -> ListShape {
    if req.ranges.len() > MAX_PATTERN_RANGES {
        return ListShape::Legacy;
    }
    let pattern = AccessPattern::from_runs(&req.ranges);
    if pattern.encoded_len() < 4 + 16 * req.ranges.len() {
        ListShape::Pattern(pattern)
    } else {
        ListShape::Legacy
    }
}

/// Scatter legacy per-range chunks through a list request's pieces. Each
/// piece lies within exactly one coalesced range (payload offsets never
/// cross range boundaries by construction), so the owning chunk is found
/// by payload-offset prefix sums.
fn scatter_list_pieces(req: &ListRequest, chunks: &[Bytes], buf: &mut [u8]) {
    let mut prefix = Vec::with_capacity(req.ranges.len());
    let mut at = 0u64;
    for &(_, len) in &req.ranges {
        prefix.push(at);
        at += len;
    }
    for p in &req.pieces {
        let idx = prefix.partition_point(|&q| q <= p.payload_off) - 1;
        let off = (p.payload_off - prefix[idx]) as usize;
        let src = &chunks[idx][off..off + p.len as usize];
        buf[p.buf_off as usize..(p.buf_off + p.len) as usize].copy_from_slice(src);
    }
}

/// Zero-fill a list request's useful bytes in `buf` (degraded hole);
/// returns the byte count holed.
fn zero_fill_list_pieces(req: &ListRequest, buf: &mut [u8]) -> u64 {
    let mut bytes = 0u64;
    for p in &req.pieces {
        buf[p.buf_off as usize..(p.buf_off + p.len) as usize].fill(0);
        bytes += p.len;
    }
    bytes
}

/// Attach the (zero-holed) buffer to a [`DpfsError::Degraded`] bubbling
/// out of `execute_reads`, so callers that opted in can keep the bytes
/// that did arrive. Other errors pass through untouched.
fn attach_degraded_data(err: DpfsError, buf: Vec<u8>) -> DpfsError {
    match err {
        DpfsError::Degraded { op, outcomes, .. } => DpfsError::Degraded {
            op,
            data: buf,
            outcomes,
        },
        other => other,
    }
}

/// Apply the client's retry policy to one completed RPC: transient
/// failures are reissued through [`ConnPool::retry_after`] (which counts
/// and traces each attempt); everything else passes through.
fn retry_if_transient(
    pool: &ConnPool,
    opts: &ClientOptions,
    server: &str,
    req: &Request,
    trace_id: u64,
    first: Result<Response>,
) -> Result<Response> {
    match first {
        Err(err) if opts.retry.enabled() && RetryPolicy::retryable(&err) => {
            pool.retry_after(server, req, trace_id, err, opts.retry)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(ranges: Vec<(u64, u64)>) -> ListRequest {
        ListRequest {
            server: 0,
            ranges,
            pieces: vec![],
        }
    }

    /// The cost-model crossover: a pattern ships iff its descriptor
    /// encodes strictly smaller than the enumerated range list
    /// (`u32` count + 16 bytes per range).
    #[test]
    fn cost_model_crossover() {
        // A single range never pays: one Run segment (21 bytes) beats a
        // one-range enumeration (20 bytes) nowhere.
        assert!(matches!(
            list_shape(&req(vec![(0, 4096)])),
            ListShape::Legacy
        ));

        // Regular strides compress to one Vector segment (29 bytes
        // total), so the descriptor wins from two ranges up...
        for count in 2u64..32 {
            let ranges: Vec<(u64, u64)> = (0..count).map(|i| (i * 64, 16)).collect();
            let shape = list_shape(&req(ranges.clone()));
            let ListShape::Pattern(p) = shape else {
                panic!("strided {count}-range access should ship as a pattern");
            };
            assert!(p.encoded_len() < 4 + 16 * ranges.len());
            assert_eq!(p.expand(), ranges);
        }

        // ...while fully irregular runs (distinct lengths — no arithmetic
        // structure to exploit) cost 17 bytes per Run segment against 16
        // enumerated, so they always fall back.
        for count in 1u64..16 {
            let ranges: Vec<(u64, u64)> = (0..count).map(|i| (i * i * 97 + i, i + 1)).collect();
            assert!(
                matches!(list_shape(&req(ranges)), ListShape::Legacy),
                "irregular {count}-range access should ship legacy"
            );
        }

        // Over the per-pattern range cap, always legacy (the descriptor
        // would be rejected server-side).
        let huge: Vec<(u64, u64)> = (0..=MAX_PATTERN_RANGES as u64)
            .map(|i| (i * 64, 16))
            .collect();
        assert!(matches!(list_shape(&req(huge)), ListShape::Legacy));
    }
}
