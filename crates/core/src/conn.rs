//! Client-side connections to I/O servers.
//!
//! The paper's DPFS-API "invokes system communication API such as socket on
//! UNIX to send the request to the server" (§2). Each client holds one
//! persistent TCP connection per server, opened lazily on first use and
//! multiplexed by [`crate::transport::Transport`]: requests are stamped
//! with correlation IDs and pipelined, so independent RPCs to one server
//! overlap instead of queueing behind each other.
//! Server *names* are dial strings (`host:port`), optionally redirected
//! through an alias map — the in-process testbed registers servers under
//! stable display names aliased to their ephemeral localhost ports.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dpfs_proto::{ErrorCode, Request, Response};
use parking_lot::Mutex;

use crate::error::{DpfsError, Result};
use crate::retry::RetryPolicy;
use crate::trace;
use crate::transport::{Pending, Transport, TransportStats, DEFAULT_RPC_TIMEOUT};

/// Maps server names to dial addresses. Empty = dial the name itself.
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    aliases: HashMap<String, String>,
}

impl Resolver {
    /// Resolver that dials names directly.
    pub fn direct() -> Resolver {
        Resolver::default()
    }

    /// Add an alias: requests for `name` dial `addr`.
    pub fn alias(&mut self, name: &str, addr: &str) {
        self.aliases.insert(name.to_string(), addr.to_string());
    }

    /// The dial string for `name`.
    pub fn resolve<'a>(&'a self, name: &'a str) -> &'a str {
        self.aliases.get(name).map(|s| s.as_str()).unwrap_or(name)
    }
}

/// A pool of lazily-opened, multiplexed server transports, owned by one
/// client.
///
/// The pool-wide map lock is held only long enough to look up (or insert)
/// a server's [`Transport`]; RPCs to different servers — and, new with the
/// multiplexed transport, *independent RPCs to the same server* — proceed
/// in parallel. `lockstep` restores PR 1's one-in-flight-per-server
/// behaviour as an ablation baseline.
pub struct ConnPool {
    resolver: Arc<Resolver>,
    transports: Mutex<HashMap<String, Arc<Transport>>>,
    /// Per-request deadline in nanoseconds (atomic so handles sharing the
    /// pool can tighten it without extra locking).
    timeout_ns: AtomicU64,
    /// Ablation: serialize RPCs per server by holding the transport gate
    /// across submit+wait (the PR 1 baseline).
    lockstep: AtomicBool,
    /// Fault-tolerance policy for transient failures. Disabled on raw
    /// pools (transport tests count exact attempts); [`crate::fs::Dpfs`]
    /// installs the mount's [`crate::file::ClientOptions::retry`].
    retry: Mutex<RetryPolicy>,
}

impl ConnPool {
    /// New pool using `resolver` for name resolution and the default
    /// per-request deadline.
    pub fn new(resolver: Arc<Resolver>) -> ConnPool {
        ConnPool {
            resolver,
            transports: Mutex::new(HashMap::new()),
            timeout_ns: AtomicU64::new(DEFAULT_RPC_TIMEOUT.as_nanos() as u64),
            lockstep: AtomicBool::new(false),
            retry: Mutex::new(RetryPolicy::disabled()),
        }
    }

    /// The pool's retry policy for transient transport failures.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock()
    }

    /// Install a retry policy: subsequent [`ConnPool::rpc`] calls (and the
    /// file fan-out paths that wait on this pool's submissions) reissue
    /// requests that fail with transport-class errors, with backoff.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// The per-request deadline applied by [`ConnPool::rpc`] and
    /// [`crate::transport::Pending::wait`] callers that use this pool's
    /// default.
    pub fn rpc_timeout(&self) -> Duration {
        Duration::from_nanos(self.timeout_ns.load(Ordering::Relaxed))
    }

    /// Set the per-request deadline for every subsequent RPC on this pool.
    pub fn set_rpc_timeout(&self, timeout: Duration) {
        self.timeout_ns.store(
            timeout.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Toggle the PR 1 lockstep ablation mode (one in-flight RPC per
    /// server, the round-trip serialized under the transport gate).
    pub fn set_lockstep(&self, on: bool) {
        self.lockstep.store(on, Ordering::Relaxed);
    }

    /// The transport for `server`, created on first sight. Holds the map
    /// lock only for the lookup/insert.
    fn transport(&self, server: &str) -> Arc<Transport> {
        let mut transports = self.transports.lock();
        if let Some(t) = transports.get(server) {
            return t.clone();
        }
        let t = Arc::new(Transport::new(server.to_string(), self.resolver.clone()));
        transports.insert(server.to_string(), t.clone());
        t
    }

    /// Enqueue one request to `server` without waiting for the response.
    /// The returned [`Pending`] is awaited with [`Pending::wait`]; submit
    /// several before waiting to pipeline them on the shared connection.
    pub fn submit(&self, server: &str, req: &Request) -> Result<Pending> {
        self.transport(server).submit(req)
    }

    /// [`ConnPool::submit`], stamping the request with `trace_id` (0 =
    /// untraced) so server-side events join the operation's trace.
    pub fn submit_traced(&self, server: &str, req: &Request, trace_id: u64) -> Result<Pending> {
        self.transport(server).submit_traced(req, trace_id)
    }

    /// Issue one request to `server` and await its response (submit +
    /// wait under this pool's deadline). Opens the connection on first
    /// use; a transport error or timeout poisons the cached connection so
    /// the next call redials.
    pub fn rpc(&self, server: &str, req: &Request) -> Result<Response> {
        if self.lockstep.load(Ordering::Relaxed) {
            return self.rpc_lockstep(server, req);
        }
        let timeout = self.rpc_timeout();
        let first = self
            .transport(server)
            .submit(req)
            .and_then(|p| p.wait(timeout));
        match first {
            Err(err) if self.retry_policy().enabled() && RetryPolicy::retryable(&err) => {
                self.retry_after(server, req, 0, err, self.retry_policy())
            }
            other => other,
        }
    }

    /// Reissue `req` after a retryable first failure, with backoff, until
    /// it succeeds terminally or the policy's attempts run out. Each retry
    /// is counted in [`TransportStats::retries`] and recorded as a `retry`
    /// span in the trace ring (when `trace_id != 0`), so recovery is
    /// observable. Returns the *last* error when all attempts fail —
    /// preserving the error class callers already match on.
    pub(crate) fn retry_after(
        &self,
        server: &str,
        req: &Request,
        trace_id: u64,
        first_err: DpfsError,
        policy: RetryPolicy,
    ) -> Result<Response> {
        self.retry_after_if(
            server,
            req,
            trace_id,
            first_err,
            policy,
            RetryPolicy::retryable,
        )
    }

    /// [`ConnPool::retry_after`] with a caller-supplied retryability
    /// predicate, for requests that are only safe to replay after a
    /// subset of transport failures (e.g. metadata mutations, which must
    /// not be reissued when the first attempt may already have reached
    /// the server). The predicate gates every attempt, not just the
    /// first: a later attempt failing outside the allowed class stops
    /// the loop and surfaces that error.
    pub(crate) fn retry_after_if(
        &self,
        server: &str,
        req: &Request,
        trace_id: u64,
        first_err: DpfsError,
        policy: RetryPolicy,
        retryable: fn(&DpfsError) -> bool,
    ) -> Result<Response> {
        let timeout = self.rpc_timeout();
        let mut err = first_err;
        for attempt in 1..policy.max_attempts {
            if !retryable(&err) {
                break;
            }
            std::thread::sleep(policy.backoff_for(server, attempt));
            let transport = self.transport(server);
            transport.note_retry();
            let t0 = trace::now_ns();
            let res = transport
                .submit_traced(req, trace_id)
                .and_then(|p| p.wait(timeout));
            trace::client_event(
                trace_id,
                "retry",
                req.kind_str(),
                server,
                t0,
                trace::now_ns().saturating_sub(t0),
                req.payload_bytes(),
            );
            match res {
                Ok(resp) => return Ok(resp),
                Err(e) => err = e,
            }
        }
        Err(err)
    }

    /// Count one degraded (zero-filled) read completion against `server`
    /// (called by the file layer when it accepts a partial read).
    pub(crate) fn note_degraded(&self, server: &str) {
        self.transport(server).note_degraded();
    }

    /// Count one reconstructed per-server read against `server` (the one
    /// that failed; its bytes were rebuilt from mirrors or peers+parity).
    pub(crate) fn note_reconstruct(&self, server: &str) {
        self.transport(server).note_reconstruct();
    }

    /// Count one metadata-cache hit against `server` (the metadata daemon
    /// whose fetch the cache absorbed).
    pub(crate) fn note_meta_cache_hit(&self, server: &str) {
        self.transport(server).note_meta_cache_hit();
    }

    /// Count one metadata-cache miss against `server`.
    pub(crate) fn note_meta_cache_miss(&self, server: &str) {
        self.transport(server).note_meta_cache_miss();
    }

    /// [`ConnPool::rpc`], but with the transport's lockstep gate held across
    /// the whole round-trip: at most one RPC in flight on this server's
    /// connection. This is PR 1's wire behaviour, kept as the ablation
    /// baseline for transport pipelining.
    pub fn rpc_lockstep(&self, server: &str, req: &Request) -> Result<Response> {
        self.rpc_lockstep_traced(server, req, 0)
    }

    /// [`ConnPool::rpc_lockstep`] with a trace ID stamped on the frame.
    pub fn rpc_lockstep_traced(
        &self,
        server: &str,
        req: &Request,
        trace_id: u64,
    ) -> Result<Response> {
        let transport = self.transport(server);
        let timeout = self.rpc_timeout();
        let _gate = transport.lockstep_gate();
        transport.submit_traced(req, trace_id)?.wait(timeout)
    }

    /// Like [`ConnPool::rpc`] but converts server-side `Error` responses
    /// into `DpfsError::Server`.
    pub fn rpc_ok(&self, server: &str, req: &Request) -> Result<Response> {
        match self.rpc(server, req)? {
            Response::Error { code, message } => Err(DpfsError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Drop the cached connection to `server` (if any). In-flight RPCs on
    /// that connection receive [`DpfsError::Disconnected`]; the next RPC
    /// redials.
    pub fn disconnect(&self, server: &str) {
        let transport = { self.transports.lock().get(server).cloned() };
        if let Some(t) = transport {
            t.disconnect("disconnected by client");
        }
    }

    /// Probe a server with `Ping`, returning liveness. Any decoded
    /// response counts — a server answering `Error { ShuttingDown }` (or
    /// any protocol-level error) is *reachable*, which is what liveness
    /// probes ask; only transport failures (connect, frame, timeout) mean
    /// the server is down.
    pub fn ping(&self, server: &str) -> bool {
        self.rpc(server, &Request::Ping).is_ok()
    }

    /// Transport counters for `server` (`None` before first use).
    pub fn transport_stats(&self, server: &str) -> Option<TransportStats> {
        self.transports.lock().get(server).map(|t| t.stats())
    }

    /// Requests currently in flight to `server`.
    pub fn in_flight(&self, server: &str) -> u64 {
        self.transports
            .lock()
            .get(server)
            .map(|t| t.in_flight())
            .unwrap_or(0)
    }
}

/// Interpret a response to a read as data chunks.
pub fn expect_data(resp: Response) -> Result<Vec<bytes::Bytes>> {
    match resp {
        Response::Data { chunks } => Ok(chunks),
        Response::Error { code, message } => Err(DpfsError::Server { code, message }),
        other => Err(DpfsError::Server {
            code: ErrorCode::BadRequest,
            message: format!("expected Data, got {other:?}"),
        }),
    }
}

/// Interpret a response to a read as data chunks and validate their
/// *shape* against the request: one chunk per range, each exactly as long
/// as its range asked (`ranges` is `(offset, len)` pairs; only the
/// lengths are checkable client-side). A buggy or hostile server
/// returning short (or long) chunks surfaces as a typed
/// [`DpfsError::ShortRead`] instead of letting the caller's scatter copy
/// index out of bounds and panic.
pub fn expect_chunks(
    resp: Response,
    ranges: &[(u64, u64)],
    server: &str,
) -> Result<Vec<bytes::Bytes>> {
    let chunks = expect_data(resp)?;
    if chunks.len() != ranges.len() {
        return Err(DpfsError::InvalidArgument(format!(
            "server {server} returned {} chunks for {} ranges",
            chunks.len(),
            ranges.len()
        )));
    }
    for (i, (chunk, &(_, len))) in chunks.iter().zip(ranges).enumerate() {
        if chunk.len() as u64 != len {
            return Err(DpfsError::ShortRead {
                server: server.to_string(),
                chunk: i,
                expected: len,
                got: chunk.len() as u64,
            });
        }
    }
    Ok(chunks)
}

/// Interpret a response to a list read ([`Request::ReadList`]) as one
/// coalesced payload, validating its length against the pattern's total
/// byte count. A buggy or hostile server returning a short (or long)
/// payload surfaces as a typed [`DpfsError::ShortRead`] instead of letting
/// the caller's scatter copy index out of bounds and panic.
pub fn expect_list_data(resp: Response, expected: u64, server: &str) -> Result<bytes::Bytes> {
    match resp {
        Response::DataList { data } => {
            if data.len() as u64 != expected {
                return Err(DpfsError::ShortRead {
                    server: server.to_string(),
                    chunk: 0,
                    expected,
                    got: data.len() as u64,
                });
            }
            Ok(data)
        }
        Response::Error { code, message } => Err(DpfsError::Server { code, message }),
        other => Err(DpfsError::Server {
            code: ErrorCode::BadRequest,
            message: format!("expected DataList, got {other:?}"),
        }),
    }
}

/// Interpret a response to a write.
pub fn expect_written(resp: Response) -> Result<u64> {
    match resp {
        Response::Written { bytes } => Ok(bytes),
        Response::Error { code, message } => Err(DpfsError::Server { code, message }),
        other => Err(DpfsError::Server {
            code: ErrorCode::BadRequest,
            message: format!("expected Written, got {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolver_aliases() {
        let mut r = Resolver::direct();
        assert_eq!(r.resolve("127.0.0.1:9999"), "127.0.0.1:9999");
        r.alias("ccn60.mcs.anl.gov", "127.0.0.1:5001");
        assert_eq!(r.resolve("ccn60.mcs.anl.gov"), "127.0.0.1:5001");
        assert_eq!(r.resolve("other"), "other");
    }

    #[test]
    fn connect_failure_is_typed() {
        let pool = ConnPool::new(Arc::new(Resolver::direct()));
        // port 1 on localhost: nothing listens there
        let err = pool.rpc("127.0.0.1:1", &Request::Ping).unwrap_err();
        assert!(matches!(err, DpfsError::Connect { .. }));
        assert!(!pool.ping("127.0.0.1:1"));
    }

    #[test]
    fn expect_list_data_validates_length() {
        let data = bytes::Bytes::from_static(b"12345678");
        let got = expect_list_data(Response::DataList { data: data.clone() }, 8, "s").unwrap();
        assert_eq!(got, data);
        let err = expect_list_data(Response::DataList { data }, 9, "s").unwrap_err();
        assert!(matches!(
            err,
            DpfsError::ShortRead {
                expected: 9,
                got: 8,
                ..
            }
        ));
        assert!(expect_list_data(Response::Pong, 0, "s").is_err());
    }

    #[test]
    fn expect_helpers() {
        assert!(expect_data(Response::Pong).is_err());
        assert_eq!(expect_written(Response::Written { bytes: 9 }).unwrap(), 9);
        let err = expect_written(Response::Error {
            code: ErrorCode::NoSpace,
            message: "full".into(),
        })
        .unwrap_err();
        assert!(matches!(
            err,
            DpfsError::Server {
                code: ErrorCode::NoSpace,
                ..
            }
        ));
    }
}
