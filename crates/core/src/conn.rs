//! Client-side connections to I/O servers.
//!
//! The paper's DPFS-API "invokes system communication API such as socket on
//! UNIX to send the request to the server" (§2). Each client holds one
//! persistent TCP connection per server, opened lazily on first use.
//! Server *names* are dial strings (`host:port`), optionally redirected
//! through an alias map — the in-process testbed registers servers under
//! stable display names aliased to their ephemeral localhost ports.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Arc;

use dpfs_proto::{frame, ErrorCode, Request, Response};
use parking_lot::Mutex;

use crate::error::{DpfsError, Result};

/// Maps server names to dial addresses. Empty = dial the name itself.
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    aliases: HashMap<String, String>,
}

impl Resolver {
    /// Resolver that dials names directly.
    pub fn direct() -> Resolver {
        Resolver::default()
    }

    /// Add an alias: requests for `name` dial `addr`.
    pub fn alias(&mut self, name: &str, addr: &str) {
        self.aliases.insert(name.to_string(), addr.to_string());
    }

    /// The dial string for `name`.
    pub fn resolve<'a>(&'a self, name: &'a str) -> &'a str {
        self.aliases.get(name).map(|s| s.as_str()).unwrap_or(name)
    }
}

/// One server's connection slot: `None` until first use and after a
/// transport error evicts the stream.
type ConnSlot = Arc<Mutex<Option<TcpStream>>>;

/// A pool of lazily-opened server connections, owned by one client.
///
/// Locking is two-level so RPCs to *different* servers proceed in
/// parallel: the pool-wide map lock is held only long enough to look up
/// (or insert) a server's slot, and each slot has its own lock held
/// across the network round-trip. Requests to the *same* server still
/// serialize on its slot, which a single framed TCP stream requires.
pub struct ConnPool {
    resolver: Arc<Resolver>,
    conns: Mutex<HashMap<String, ConnSlot>>,
}

impl ConnPool {
    /// New pool using `resolver` for name resolution.
    pub fn new(resolver: Arc<Resolver>) -> ConnPool {
        ConnPool {
            resolver,
            conns: Mutex::new(HashMap::new()),
        }
    }

    /// The slot for `server`, created empty on first sight. Holds the map
    /// lock only for the lookup/insert.
    fn slot(&self, server: &str) -> ConnSlot {
        let mut conns = self.conns.lock();
        if let Some(slot) = conns.get(server) {
            return slot.clone();
        }
        let slot = ConnSlot::default();
        conns.insert(server.to_string(), slot.clone());
        slot
    }

    /// Issue one request to `server` and await its response. Opens the
    /// connection on first use; a transport error evicts the cached
    /// connection so the next call redials.
    pub fn rpc(&self, server: &str, req: &Request) -> Result<Response> {
        let slot = self.slot(server);
        let mut conn = slot.lock();
        if conn.is_none() {
            let addr = self.resolver.resolve(server);
            let stream = TcpStream::connect(addr).map_err(|e| DpfsError::Connect {
                server: server.to_string(),
                source: e,
            })?;
            stream.set_nodelay(true).ok();
            *conn = Some(stream);
        }
        let stream = conn.as_mut().expect("just connected");
        let outcome = frame::write_frame(stream, &req.encode())
            .and_then(|()| frame::read_frame(stream))
            .and_then(Response::decode);
        match outcome {
            Ok(resp) => Ok(resp),
            Err(e) => {
                *conn = None;
                Err(e.into())
            }
        }
    }

    /// Like [`ConnPool::rpc`] but converts server-side `Error` responses
    /// into `DpfsError::Server`.
    pub fn rpc_ok(&self, server: &str, req: &Request) -> Result<Response> {
        match self.rpc(server, req)? {
            Response::Error { code, message } => Err(DpfsError::Server { code, message }),
            resp => Ok(resp),
        }
    }

    /// Drop the cached connection to `server` (if any). Waits for an
    /// in-flight RPC on that connection to finish rather than yanking the
    /// stream out from under it.
    pub fn disconnect(&self, server: &str) {
        let slot = { self.conns.lock().get(server).cloned() };
        if let Some(slot) = slot {
            *slot.lock() = None;
        }
    }

    /// Probe a server with `Ping`, returning round-trip success.
    pub fn ping(&self, server: &str) -> bool {
        matches!(self.rpc(server, &Request::Ping), Ok(Response::Pong))
    }
}

/// Interpret a response to a read as data chunks.
pub fn expect_data(resp: Response) -> Result<Vec<bytes::Bytes>> {
    match resp {
        Response::Data { chunks } => Ok(chunks),
        Response::Error { code, message } => Err(DpfsError::Server { code, message }),
        other => Err(DpfsError::Server {
            code: ErrorCode::BadRequest,
            message: format!("expected Data, got {other:?}"),
        }),
    }
}

/// Interpret a response to a write.
pub fn expect_written(resp: Response) -> Result<u64> {
    match resp {
        Response::Written { bytes } => Ok(bytes),
        Response::Error { code, message } => Err(DpfsError::Server { code, message }),
        other => Err(DpfsError::Server {
            code: ErrorCode::BadRequest,
            message: format!("expected Written, got {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolver_aliases() {
        let mut r = Resolver::direct();
        assert_eq!(r.resolve("127.0.0.1:9999"), "127.0.0.1:9999");
        r.alias("ccn60.mcs.anl.gov", "127.0.0.1:5001");
        assert_eq!(r.resolve("ccn60.mcs.anl.gov"), "127.0.0.1:5001");
        assert_eq!(r.resolve("other"), "other");
    }

    #[test]
    fn connect_failure_is_typed() {
        let pool = ConnPool::new(Arc::new(Resolver::direct()));
        // port 1 on localhost: nothing listens there
        let err = pool.rpc("127.0.0.1:1", &Request::Ping).unwrap_err();
        assert!(matches!(err, DpfsError::Connect { .. }));
        assert!(!pool.ping("127.0.0.1:1"));
    }

    #[test]
    fn expect_helpers() {
        assert!(expect_data(Response::Pong).is_err());
        assert_eq!(expect_written(Response::Written { bytes: 9 }).unwrap(), 9);
        let err = expect_written(Response::Error {
            code: ErrorCode::NoSpace,
            message: "full".into(),
        })
        .unwrap_err();
        assert!(matches!(
            err,
            DpfsError::Server {
                code: ErrorCode::NoSpace,
                ..
            }
        ));
    }
}
