//! Client-side request tracing.
//!
//! Every client operation (`read`/`write`/`sync`/...) gets a fresh
//! *trace ID* from [`next_trace_id`]. The operation records its phases —
//! `plan` (brick planning / request combination), `submit` (frames onto
//! the wire), `await` (all responses back), one `rpc` span per server RPC,
//! and an enclosing `op` span — into the process-global [`ring()`]. Traced
//! requests travel as v3 frames, so the server's events (`decode`,
//! `queue`, `device`, `delay`, `respond`) carry the same trace ID; with an
//! in-process testbed both sides land in the same ring and a single JSONL
//! export ([`export_jsonl_to`]) shows the whole operation end to end.
//!
//! Recording is cheap (a `fetch_add` plus one short slot lock per event),
//! so tracing stays on in benchmarks; the ablation harness exports it via
//! `DPFS_TRACE_OUT`.
//!
//! The primitives live in `dpfs-obs` (shared with `dpfs-server`); this
//! module re-exports them and adds the client-side helpers.

pub use dpfs_obs::{
    export_jsonl, export_jsonl_to, next_trace_id, now_ns, ring, sampled_trace_id,
    set_trace_sample_every, slowlog, ClusterSnapshot, Counter, Gauge, HistSnapshot, Histogram,
    MetricsRegistry, NodeRole, NodeSnapshot, Side, SlowLog, TraceEvent, TraceRing, HIST_BUCKETS,
};

/// Record one client-side span into the global ring. No-op when
/// `trace_id` is 0 (untraced operation), so call sites need no branches.
pub fn client_event(
    trace_id: u64,
    phase: &'static str,
    kind: &'static str,
    server: &str,
    start_ns: u64,
    dur_ns: u64,
    bytes: u64,
) {
    if trace_id == 0 {
        return;
    }
    ring().record(TraceEvent {
        seq: 0,
        trace_id,
        side: Side::Client,
        phase,
        kind,
        server: server.to_string(),
        start_ns,
        dur_ns,
        bytes,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_trace_id_records_nothing() {
        let cursor = ring().cursor();
        client_event(0, "plan", "read", "", 0, 1, 0);
        assert_eq!(ring().cursor(), cursor);
    }

    #[test]
    fn client_event_lands_in_global_ring() {
        let id = next_trace_id();
        let cursor = ring().cursor();
        client_event(id, "plan", "read", "ion0", now_ns(), 5, 64);
        let events: Vec<_> = ring()
            .events_since(cursor)
            .into_iter()
            .filter(|e| e.trace_id == id)
            .collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, "plan");
        assert_eq!(events[0].side, Side::Client);
        assert_eq!(events[0].server, "ion0");
    }
}
