//! Retry policy for idempotent subfile RPCs.
//!
//! Every DPFS data-path request (read, write, sync, stat, ...) names an
//! absolute subfile range, so replaying one after a transport failure is
//! safe — at worst the server re-applies the same bytes to the same
//! offsets. That makes the client the right place for fault tolerance:
//! a [`RetryPolicy`] classifies errors (transport failures retry,
//! application answers do not), spaces attempts with capped exponential
//! backoff, and de-synchronizes clients with deterministic jitter drawn
//! from the vendored `rand` (a pure function of `seed` and the attempt
//! number, so test runs replay exactly).
//!
//! The policy is wired into [`crate::conn::ConnPool`]: `rpc` and the
//! [`crate::file::FileHandle`] fan-out retry transparently; the lockstep
//! ablation path stays retry-free so PR 1/2 baselines measure what they
//! always measured.

use std::time::Duration;

use crate::error::DpfsError;

/// When — and how often — a failed RPC is reissued.
///
/// `Copy` + `Eq` so it can ride inside [`crate::file::ClientOptions`];
/// jitter is therefore an integer percentage rather than a float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles every retry after that.
    pub base_backoff: Duration,
    /// Cap on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Jitter as a percentage of the backoff: the sleep is scaled by a
    /// factor drawn uniformly from `[100 - jitter_pct, 100 + jitter_pct]`
    /// percent. 0 disables jitter. Values above 100 are treated as 100.
    pub jitter_pct: u32,
    /// Seed of the jitter stream: `Some(seed)` pins it (the backoff for
    /// attempt `n` is then a pure function of `(seed, server, n)`, so
    /// test runs replay exactly); `None` — the default — means "derive a
    /// fresh seed when this policy is installed on a mount"
    /// ([`RetryPolicy::seeded_for_mount`]). A fixed fleet-wide default
    /// seed would make every client sleep *identical* "jitter", keeping
    /// retry storms in lockstep — the opposite of the de-synchronization
    /// jitter exists for.
    pub seed: Option<u64>,
}

impl Default for RetryPolicy {
    /// Three retries (four attempts), 10 ms base, 200 ms cap, ±50% jitter,
    /// per-mount seed derivation.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            jitter_pct: 50,
            seed: None,
        }
    }
}

/// Jitter seed an unseeded policy falls back to when its backoff is
/// computed before any mount installed it (and the legacy fleet-wide
/// constant, kept so direct `backoff()` calls stay deterministic).
const FALLBACK_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fresh, unpredictable-enough jitter seed: wall-clock nanoseconds
/// mixed (splitmix64) with the process ID and a per-process counter, so
/// two mounts in one process — or one process per node across a fleet —
/// never share a jitter stream.
pub fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut x = nanos
        ^ (u64::from(std::process::id()) << 32)
        ^ COUNTER
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0xa076_1d64_78bd_642f);
    // splitmix64 finalizer
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (the pre-fault-tolerance behaviour;
    /// also what raw `ConnPool`s default to so transport tests count
    /// exactly one attempt per call).
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Whether this policy ever retries.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Is `err` worth retrying? Only *transport-class* failures — connect
    /// refusals, deadline expiries, dead connections, and frame-level I/O
    /// failures (a broken pipe mid-write, a frame torn by a dropped
    /// connection) — where the request may never have reached the server,
    /// or the server may be back by the next attempt. Application-level
    /// answers (server error responses, short writes, bad arguments) are
    /// the server's verdict on a request it *did* process; replaying them
    /// would loop forever on the same answer. Protocol corruption
    /// (bad magic, checksum mismatch) is also terminal: the peer is
    /// confused, not briefly absent.
    pub fn retryable(err: &DpfsError) -> bool {
        matches!(
            err,
            DpfsError::Connect { .. }
                | DpfsError::Timeout { .. }
                | DpfsError::Disconnected { .. }
                | DpfsError::Frame(dpfs_proto::FrameError::Io(_))
        )
    }

    /// Pin the jitter seed (tests, replayable runs). Overrides per-mount
    /// derivation.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Resolve this policy for installation on one mount: an unseeded
    /// (`seed: None`) policy gets a fresh [`entropy_seed`], so two
    /// default-configured mounts jitter differently; an explicit seed is
    /// kept verbatim.
    pub fn seeded_for_mount(mut self) -> Self {
        if self.seed.is_none() {
            self.seed = Some(entropy_seed());
        }
        self
    }

    /// Backoff before retry number `attempt` (1-based: the sleep before
    /// the first retry is `backoff(1)`). Exponential from `base_backoff`,
    /// capped at `max_backoff`, scaled by deterministic jitter.
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.backoff_for("", attempt)
    }

    /// [`RetryPolicy::backoff`] with the target server's name mixed into
    /// the jitter stream, so one client retrying against several servers
    /// does not hammer them in phase either.
    pub fn backoff_for(&self, server: &str, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_backoff
            .saturating_mul(1u32 << exp.min(31))
            .min(self.max_backoff);
        let jitter = self.jitter_pct.min(100);
        if jitter == 0 || raw.is_zero() {
            return raw;
        }
        // FNV-1a over the server name: cheap, deterministic mixing.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in server.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let seed = self.seed.unwrap_or(FALLBACK_SEED);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ h ^ u64::from(attempt));
        let pct = rng.gen_range(100 - jitter..=100 + jitter);
        raw.saturating_mul(pct) / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_retries_and_disabled_does_not() {
        assert!(RetryPolicy::default().enabled());
        assert!(!RetryPolicy::disabled().enabled());
        assert_eq!(RetryPolicy::disabled().max_attempts, 1);
    }

    #[test]
    fn transport_errors_retry_application_errors_do_not() {
        let retryable = [
            DpfsError::Connect {
                server: "s".into(),
                source: std::io::Error::other("refused"),
            },
            DpfsError::Timeout {
                server: "s".into(),
                timeout: Duration::from_secs(1),
            },
            DpfsError::Disconnected {
                server: "s".into(),
                reason: "lost".into(),
            },
            DpfsError::Frame(dpfs_proto::FrameError::Io(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe",
            ))),
        ];
        for err in &retryable {
            assert!(RetryPolicy::retryable(err), "{err} should retry");
        }
        assert!(
            !RetryPolicy::retryable(&DpfsError::Frame(dpfs_proto::FrameError::BadMagic(
                *b"XXXX"
            ))),
            "protocol corruption must not retry"
        );
        let terminal = [
            DpfsError::ShortWrite {
                server: "s".into(),
                expected: 8,
                written: 4,
            },
            DpfsError::Server {
                code: dpfs_proto::ErrorCode::NoSpace,
                message: "full".into(),
            },
            DpfsError::InvalidArgument("bad".into()),
        ];
        for err in &terminal {
            assert!(!RetryPolicy::retryable(err), "{err} must not retry");
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            jitter_pct: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(20), p.max_backoff);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..8 {
            let a = p.backoff(attempt);
            let b = p.backoff(attempt);
            assert_eq!(a, b, "same (seed, attempt) must give the same sleep");
            let raw = RetryPolicy { jitter_pct: 0, ..p }.backoff(attempt);
            assert!(
                a >= raw / 2 && a <= raw * 3 / 2,
                "{a:?} outside ±50% of {raw:?}"
            );
        }
        let other_seed = RetryPolicy { seed: Some(7), ..p };
        assert!(
            (1..16).any(|n| other_seed.backoff(n) != p.backoff(n)),
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn mount_seeding_desynchronizes_defaults_but_keeps_overrides() {
        // Two mounts installing the *default* policy must not share a
        // jitter stream (the fleet-synchronization bug): each gets its
        // own derived seed.
        let a = RetryPolicy::default().seeded_for_mount();
        let b = RetryPolicy::default().seeded_for_mount();
        assert!(a.seed.is_some() && b.seed.is_some());
        assert_ne!(a.seed, b.seed, "per-mount seeds must differ");
        assert!(
            (1..16).any(|n| a.backoff(n) != b.backoff(n)),
            "two default mounts must produce different backoff streams"
        );
        // An explicit seed survives installation untouched — tests that
        // pin the stream stay deterministic.
        let pinned = RetryPolicy::default().with_seed(42).seeded_for_mount();
        assert_eq!(pinned.seed, Some(42));
        assert_eq!(
            pinned.backoff(3),
            RetryPolicy::default().with_seed(42).backoff(3)
        );
    }

    #[test]
    fn server_name_joins_the_jitter_stream() {
        let p = RetryPolicy::default().with_seed(99);
        assert!(
            (1..16).any(|n| p.backoff_for("ion00", n) != p.backoff_for("ion01", n)),
            "different servers should jitter differently"
        );
        // And stays deterministic per (seed, server, attempt).
        assert_eq!(p.backoff_for("ion00", 2), p.backoff_for("ion00", 2));
    }
}
