//! Multiplexed RPC transport: pipelined per-server connections.
//!
//! The paper's client "invokes system communication API such as socket"
//! per request (§2); PR 1 reproduced that as lockstep — one in-flight RPC
//! per server connection, the slot lock held across the whole round-trip.
//! This module replaces that with a multiplexed transport in the style of
//! PVFS-era pipelined I/O stacks:
//!
//! - **Writer path**: [`Transport::submit`] stamps the request with a fresh
//!   correlation ID, registers a waiter in the in-flight table, writes the
//!   v2 frame under a short writer lock, and returns a [`Pending`] without
//!   waiting for the response. Many requests can be on the wire at once.
//! - **Demux reader**: one dedicated thread per connection reads response
//!   frames, looks the correlation ID up in the in-flight table, and
//!   completes that waiter — responses may arrive out of order.
//! - **Deadlines**: [`Pending::wait`] bounds the wait. A timeout evicts the
//!   waiter, poisons the connection (everything behind a stalled response
//!   is suspect), and surfaces [`DpfsError::Timeout`]; the next submission
//!   redials.
//! - **Error fan-out**: when a connection dies — read error, write error,
//!   undecodable response, peer close — every in-flight waiter is completed
//!   with [`DpfsError::Disconnected`]. Nothing hangs.
//!
//! [`Transport::lockstep_gate`] restores PR 1's one-RPC-at-a-time-per-server
//! behaviour for ablation: holding the gate across submit+wait serializes
//! callers without touching the pipelined machinery.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use dpfs_obs::{HistSnapshot, Histogram};
use dpfs_proto::{frame, Request, Response};
use parking_lot::{Mutex, MutexGuard};

use crate::conn::Resolver;
use crate::error::{DpfsError, Result};
use crate::trace;

/// Default per-request deadline. Generous: it exists to catch hung servers
/// and dead TCP peers, not to race healthy ones. Tighten per pool with
/// [`crate::conn::ConnPool::set_rpc_timeout`].
pub const DEFAULT_RPC_TIMEOUT: Duration = Duration::from_secs(30);

/// What the demux reader delivers to a waiter: the decoded response, or the
/// reason the connection died.
type WireResult = std::result::Result<Response, String>;

/// In-flight table of one connection: correlation ID → waiter.
struct Inflight {
    waiters: HashMap<u64, mpsc::Sender<WireResult>>,
    /// Set (with the reason) once the connection is poisoned. New
    /// submissions seeing this redial instead.
    dead: Option<String>,
}

/// One live connection: the shared state between submitters, the demux
/// reader thread, and timed-out waiters.
struct Conn {
    server: String,
    /// Handle used to sever the socket when poisoning; the reader thread
    /// and the writer hold their own clones.
    stream: TcpStream,
    /// Writer half. Held only for the duration of one frame write.
    writer: Mutex<TcpStream>,
    inflight: Mutex<Inflight>,
    /// The owning transport's counters, so poisoning can account the
    /// disconnect even after the transport dropped this connection.
    counters: Arc<Counters>,
}

impl Conn {
    /// Poison this connection: record `reason`, sever the socket (which
    /// unblocks the reader thread), and fan the error out to every
    /// in-flight waiter. Idempotent — the first reason wins (and is the
    /// only one counted).
    fn poison(&self, reason: &str) {
        let waiters = {
            let mut infl = self.inflight.lock();
            if infl.dead.is_none() {
                infl.dead = Some(reason.to_string());
                self.counters.disconnected.fetch_add(1, Ordering::Relaxed);
            }
            std::mem::take(&mut infl.waiters)
        };
        let _ = self.stream.shutdown(Shutdown::Both);
        for tx in waiters.into_values() {
            let _ = tx.send(Err(reason.to_string()));
        }
    }

    fn is_dead(&self) -> bool {
        self.inflight.lock().dead.is_some()
    }
}

/// Running totals for one server's transport (monotonic counters, the
/// current in-flight gauge, and per-kind latency histograms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Requests successfully written to the wire.
    pub submitted: u64,
    /// Responses delivered to waiters.
    pub completed: u64,
    /// Waits that hit their deadline.
    pub timed_out: u64,
    /// Connections established (1 = never redialed).
    pub dials: u64,
    /// Requests currently awaiting a response.
    pub in_flight: u64,
    /// Connections poisoned (timeout, write/read failure, peer close,
    /// explicit disconnect). Each poisoned connection counts once.
    pub disconnected: u64,
    /// Highest number of requests simultaneously in flight on one
    /// connection — the pipelining depth actually achieved.
    pub in_flight_peak: u64,
    /// Retry attempts issued after transient (transport-class) failures.
    /// Application errors never count here.
    pub retries: u64,
    /// Per-server read requests that failed terminally and were
    /// zero-filled under [`crate::file::ClientOptions::degraded_reads`].
    pub degraded: u64,
    /// Per-server read requests that failed terminally and were rebuilt
    /// byte-exact from this server's mirrors or XOR peers + parity.
    pub reconstructs: u64,
    /// Metadata lookups served from the client-side attr/layout cache
    /// instead of a full fetch from this (metadata) server.
    pub meta_cache_hits: u64,
    /// Metadata lookups that had to fetch from this (metadata) server.
    pub meta_cache_misses: u64,
    /// List-I/O RPCs submitted (`ReadList`/`WriteList`: one access-pattern
    /// descriptor on the wire instead of an enumerated range list).
    pub list_io: u64,
    /// Total encoded request bytes written to this server (wire payloads,
    /// excluding frame headers). The denominator of the list-I/O request
    /// shrink ratio.
    pub req_bytes: u64,
    /// Round-trip latency of completed `Read` RPCs (submit → response).
    pub read_latency: HistSnapshot,
    /// Round-trip latency of completed `Write` RPCs.
    pub write_latency: HistSnapshot,
    /// Round-trip latency of everything else (ping, stat, sync, ...).
    pub other_latency: HistSnapshot,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    timed_out: AtomicU64,
    dials: AtomicU64,
    disconnected: AtomicU64,
    in_flight_peak: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    reconstructs: AtomicU64,
    meta_cache_hits: AtomicU64,
    meta_cache_misses: AtomicU64,
    list_io: AtomicU64,
    req_bytes: AtomicU64,
    hist_read: Histogram,
    hist_write: Histogram,
    hist_other: Histogram,
}

impl Counters {
    /// The latency histogram for one request kind (as named by
    /// [`Request::kind_str`]).
    fn hist_for(&self, kind: &str) -> &Histogram {
        match kind {
            "read" | "read_list" => &self.hist_read,
            "write" | "write_list" => &self.hist_write,
            _ => &self.hist_other,
        }
    }
}

/// The multiplexed transport to one server. Owned by the pool; shared by
/// every handle of one client.
pub struct Transport {
    server: String,
    resolver: Arc<Resolver>,
    /// Current connection; `None` before first use and after poisoning is
    /// observed. Held only to look up / replace the `Arc`.
    slot: Mutex<Option<Arc<Conn>>>,
    next_id: AtomicU64,
    /// Ablation gate (PR 1 baseline): held across submit+wait to allow at
    /// most one in-flight RPC on this server. Unused in multiplexed mode.
    gate: Mutex<()>,
    counters: Arc<Counters>,
}

impl Transport {
    /// Transport for `server`, dialing through `resolver` on first use.
    pub fn new(server: String, resolver: Arc<Resolver>) -> Transport {
        Transport {
            server,
            resolver,
            slot: Mutex::new(None),
            next_id: AtomicU64::new(1),
            gate: Mutex::new(()),
            counters: Arc::new(Counters::default()),
        }
    }

    /// The current (or fresh) connection. Dials and spawns the demux reader
    /// when the slot is empty or holds a poisoned connection.
    fn conn(&self) -> Result<Arc<Conn>> {
        let mut slot = self.slot.lock();
        if let Some(c) = slot.as_ref() {
            if !c.is_dead() {
                return Ok(c.clone());
            }
            *slot = None;
        }
        let addr = self.resolver.resolve(&self.server);
        let connect = |e: std::io::Error| DpfsError::Connect {
            server: self.server.clone(),
            source: e,
        };
        let stream = TcpStream::connect(addr).map_err(connect)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().map_err(connect)?;
        let reader = stream.try_clone().map_err(connect)?;
        let conn = Arc::new(Conn {
            server: self.server.clone(),
            stream,
            writer: Mutex::new(writer),
            inflight: Mutex::new(Inflight {
                waiters: HashMap::new(),
                dead: None,
            }),
            counters: self.counters.clone(),
        });
        let reader_conn = conn.clone();
        std::thread::Builder::new()
            .name(format!("dpfs-demux-{}", self.server))
            .spawn(move || demux_loop(reader, reader_conn))
            .map_err(connect)?;
        self.counters.dials.fetch_add(1, Ordering::Relaxed);
        *slot = Some(conn.clone());
        Ok(conn)
    }

    /// Enqueue `req` on the wire and return a handle to await the response.
    /// Does not block on the server: the frame is written (short writer
    /// lock) and the call returns with the request in flight.
    pub fn submit(&self, req: &Request) -> Result<Pending> {
        self.submit_traced(req, 0)
    }

    /// [`Transport::submit`], stamping the frame with `trace_id` so the
    /// server's events join the operation's trace. `trace_id == 0` means
    /// untraced (plain v2 frame on the wire).
    pub fn submit_traced(&self, req: &Request, trace_id: u64) -> Result<Pending> {
        // One retry: the slot can hand out a connection that a concurrent
        // poison killed between the lookup and our registration.
        match self.try_submit(req, trace_id) {
            Err(DpfsError::Disconnected { .. }) => self.try_submit(req, trace_id),
            other => other,
        }
    }

    fn try_submit(&self, req: &Request, trace_id: u64) -> Result<Pending> {
        let conn = self.conn()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut infl = conn.inflight.lock();
            if let Some(reason) = &infl.dead {
                return Err(DpfsError::Disconnected {
                    server: self.server.clone(),
                    reason: reason.clone(),
                });
            }
            infl.waiters.insert(id, tx);
            let depth = infl.waiters.len() as u64;
            self.counters
                .in_flight_peak
                .fetch_max(depth, Ordering::Relaxed);
        }
        // Scatter-gather framing: `encode_parts` hands back the header and
        // (for `WriteList`) the caller's refcounted payload as separate
        // slices, which the vectored frame writers push to the socket
        // without gluing them into one intermediate buffer.
        let parts = req.encode_parts();
        let part_refs: Vec<&[u8]> = parts.iter().map(|p| &p[..]).collect();
        let wire_len: u64 = parts.iter().map(|p| p.len() as u64).sum();
        let wrote = {
            let mut w = conn.writer.lock();
            if trace_id != 0 {
                frame::write_frame_v3_parts(&mut *w, id, trace_id, &part_refs)
            } else {
                frame::write_frame_v2_parts(&mut *w, id, &part_refs)
            }
        };
        if let Err(e) = wrote {
            conn.inflight.lock().waiters.remove(&id);
            conn.poison(&format!("request write failed: {e}"));
            return Err(e.into());
        }
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.counters
            .req_bytes
            .fetch_add(wire_len, Ordering::Relaxed);
        let kind = req.kind_str();
        if kind == "read_list" || kind == "write_list" {
            self.counters.list_io.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Pending {
            server: self.server.clone(),
            id,
            rx,
            conn,
            counters: self.counters.clone(),
            trace_id,
            kind,
            bytes: req.payload_bytes(),
            submitted_ns: trace::now_ns(),
        })
    }

    /// Poison the current connection (if any) and empty the slot, so the
    /// next submission redials. In-flight waiters get transport errors.
    pub fn disconnect(&self, reason: &str) {
        let conn = self.slot.lock().take();
        if let Some(conn) = conn {
            conn.poison(reason);
        }
    }

    /// Number of requests currently awaiting responses.
    pub fn in_flight(&self) -> u64 {
        let slot = self.slot.lock();
        slot.as_ref()
            .map(|c| c.inflight.lock().waiters.len() as u64)
            .unwrap_or(0)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TransportStats {
        TransportStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            timed_out: self.counters.timed_out.load(Ordering::Relaxed),
            dials: self.counters.dials.load(Ordering::Relaxed),
            in_flight: self.in_flight(),
            disconnected: self.counters.disconnected.load(Ordering::Relaxed),
            in_flight_peak: self.counters.in_flight_peak.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            reconstructs: self.counters.reconstructs.load(Ordering::Relaxed),
            meta_cache_hits: self.counters.meta_cache_hits.load(Ordering::Relaxed),
            meta_cache_misses: self.counters.meta_cache_misses.load(Ordering::Relaxed),
            list_io: self.counters.list_io.load(Ordering::Relaxed),
            req_bytes: self.counters.req_bytes.load(Ordering::Relaxed),
            read_latency: self.counters.hist_read.snapshot(),
            write_latency: self.counters.hist_write.snapshot(),
            other_latency: self.counters.hist_other.snapshot(),
        }
    }

    /// Count one retry attempt against this server (the fault-tolerance
    /// layer calls this right before reissuing a request).
    pub fn note_retry(&self) {
        self.counters.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one degraded (zero-filled) per-server read completion.
    pub fn note_degraded(&self) {
        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one reconstructed (redundancy-rebuilt) per-server read.
    pub fn note_reconstruct(&self) {
        self.counters.reconstructs.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one metadata lookup served from the client-side cache.
    pub fn note_meta_cache_hit(&self) {
        self.counters
            .meta_cache_hits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Count one metadata lookup that missed the client-side cache.
    pub fn note_meta_cache_miss(&self) {
        self.counters
            .meta_cache_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The PR 1 ablation gate: hold the returned guard across submit+wait
    /// to restore one-in-flight-per-server lockstep.
    pub fn lockstep_gate(&self) -> MutexGuard<'_, ()> {
        self.gate.lock()
    }
}

/// A submitted request awaiting its response.
///
/// Dropping a `Pending` abandons the response: the demux reader discards it
/// on arrival (the entry stays in the in-flight table until then, or until
/// the connection dies). Callers should `wait` every submission.
pub struct Pending {
    server: String,
    id: u64,
    rx: mpsc::Receiver<WireResult>,
    conn: Arc<Conn>,
    counters: Arc<Counters>,
    trace_id: u64,
    kind: &'static str,
    bytes: u64,
    submitted_ns: u64,
}

impl Pending {
    /// Await the response for at most `timeout`.
    ///
    /// On deadline: the waiter is evicted (a late response is discarded),
    /// the connection is poisoned — in-order framing means everything
    /// behind a stalled response is also stalled, and pending peers must
    /// get errors rather than hangs — and [`DpfsError::Timeout`] is
    /// returned. The next submission on this transport redials.
    pub fn wait(self, timeout: Duration) -> Result<Response> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(resp)) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                let dur = trace::now_ns().saturating_sub(self.submitted_ns);
                self.counters.hist_for(self.kind).record(dur);
                trace::client_event(
                    self.trace_id,
                    "rpc",
                    self.kind,
                    &self.server,
                    self.submitted_ns,
                    dur,
                    self.bytes,
                );
                trace::slowlog().note(
                    trace::Side::Client,
                    self.kind,
                    &self.server,
                    self.trace_id,
                    dur,
                    self.bytes,
                );
                Ok(resp)
            }
            Ok(Err(reason)) => Err(DpfsError::Disconnected {
                server: self.server,
                reason,
            }),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                self.conn.inflight.lock().waiters.remove(&self.id);
                self.conn
                    .poison(&format!("request {} timed out after {timeout:?}", self.id));
                Err(DpfsError::Timeout {
                    server: self.server,
                    timeout,
                })
            }
            // The reader dropped the sender without a verdict (it only does
            // so via poison, which sends first — this arm is belt and
            // braces against a panicking reader).
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(DpfsError::Disconnected {
                server: self.server,
                reason: "connection reader exited".to_string(),
            }),
        }
    }

    /// The correlation ID this request went out under (tests).
    pub fn corr_id(&self) -> u64 {
        self.id
    }
}

/// The demux reader: completes waiters out of order by correlation ID until
/// the connection dies, then fans the failure out.
fn demux_loop(mut stream: TcpStream, conn: Arc<Conn>) {
    loop {
        let frame = match frame::read_frame_any(&mut stream) {
            Ok(f) => f,
            Err(e) => {
                conn.poison(&format!("connection to {} lost: {e}", conn.server));
                return;
            }
        };
        let Some(id) = frame.corr_id else {
            // We only ever send v2 requests; a v1 response frame means the
            // peer is confused about which protocol this connection speaks.
            conn.poison(&format!(
                "server {} sent an uncorrelated frame",
                conn.server
            ));
            return;
        };
        let resp = match Response::decode(frame.payload) {
            Ok(r) => r,
            Err(e) => {
                conn.poison(&format!("undecodable response from {}: {e}", conn.server));
                return;
            }
        };
        // A missing waiter timed out and was evicted; drop the response.
        if let Some(tx) = conn.inflight.lock().waiters.remove(&id) {
            let _ = tx.send(Ok(resp));
        }
    }
}
