//! Striping algorithms: assigning bricks to servers (paper §4.1).
//!
//! - [`round_robin`] — the classic baseline: brick `i` goes to server
//!   `i mod S`.
//! - [`greedy`] — the paper's Greedy Striping Algorithm (Figure 8): each
//!   server carries a normalized performance number `P[k]` (1 = fastest);
//!   brick `i` goes to the server minimizing `A[k] + P[k]`, the accumulated
//!   weighted load, so fast storage receives proportionally more bricks.
//!
//! [`BrickMap`] holds the resulting assignment plus the per-server brick
//! lists (the catalog's `bricklist` columns) and the inverse map from brick
//! to `(server, subfile byte offset)`.

use std::collections::HashMap;

use crate::error::{DpfsError, Result};
use crate::layout::Layout;

/// Round-robin assignment of `num_bricks` bricks over `num_servers`.
pub fn round_robin(num_bricks: u64, num_servers: usize) -> Vec<usize> {
    assert!(num_servers > 0, "no servers");
    (0..num_bricks)
        .map(|b| (b % num_servers as u64) as usize)
        .collect()
}

/// The paper's greedy algorithm (Figure 8). `perf[k]` is server `k`'s
/// normalized performance number (1 = fastest; larger = slower). Figure 8
/// leaves ties unspecified; breaking them toward the *faster* server (then
/// the lower index) reproduces the brick lists of Figure 9 exactly.
pub fn greedy(num_bricks: u64, perf: &[i64]) -> Vec<usize> {
    assert!(!perf.is_empty(), "no servers");
    assert!(
        perf.iter().all(|&p| p >= 1),
        "performance numbers must be >= 1"
    );
    let mut accumulated: Vec<i64> = vec![0; perf.len()];
    let mut assignment = Vec::with_capacity(num_bricks as usize);
    for _ in 0..num_bricks {
        // find k minimizing A[k] + P[k]; ties prefer small P[k], then small k
        let k = (0..perf.len())
            .min_by_key(|&k| (accumulated[k] + perf[k], perf[k], k))
            .expect("non-empty");
        assignment.push(k);
        accumulated[k] += perf[k];
    }
    assignment
}

/// Brick-to-server map for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrickMap {
    /// `assignment[b]` = index of the server owning brick `b`.
    assignment: Vec<usize>,
    /// `per_server[s]` = brick numbers owned by server `s`, in subfile
    /// order (the catalog's `bricklist`).
    per_server: Vec<Vec<u64>>,
    /// `slot[b]` = position of brick `b` within its server's subfile.
    slot: Vec<u64>,
}

impl BrickMap {
    /// Build from an assignment vector over `num_servers` servers.
    pub fn from_assignment(assignment: Vec<usize>, num_servers: usize) -> BrickMap {
        let mut per_server: Vec<Vec<u64>> = vec![Vec::new(); num_servers];
        let mut slot = vec![0u64; assignment.len()];
        for (b, &s) in assignment.iter().enumerate() {
            slot[b] = per_server[s].len() as u64;
            per_server[s].push(b as u64);
        }
        BrickMap {
            assignment,
            per_server,
            slot,
        }
    }

    /// Rebuild from the catalog's per-server brick lists. `order` maps each
    /// bricklist to its server index (lists come back sorted by server
    /// name).
    pub fn from_bricklists(lists: &[Vec<i64>]) -> Result<BrickMap> {
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let mut assignment = vec![usize::MAX; total];
        let mut slot = vec![0u64; total];
        for (s, list) in lists.iter().enumerate() {
            for (pos, &b) in list.iter().enumerate() {
                let b = b as usize;
                if b >= total || assignment[b] != usize::MAX {
                    return Err(DpfsError::InvalidArgument(format!(
                        "corrupt brick lists: brick {b} duplicated or out of range"
                    )));
                }
                assignment[b] = s;
                slot[b] = pos as u64;
            }
        }
        if assignment.contains(&usize::MAX) {
            return Err(DpfsError::InvalidArgument(
                "corrupt brick lists: missing brick".into(),
            ));
        }
        Ok(BrickMap {
            assignment,
            per_server: lists
                .iter()
                .map(|l| l.iter().map(|&b| b as u64).collect())
                .collect(),
            slot,
        })
    }

    /// Number of bricks mapped.
    pub fn num_bricks(&self) -> u64 {
        self.assignment.len() as u64
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.per_server.len()
    }

    /// The server owning brick `b`.
    pub fn server_of(&self, b: u64) -> usize {
        self.assignment[b as usize]
    }

    /// Brick `b`'s slot (position) within its server's subfile.
    pub fn slot_of(&self, b: u64) -> u64 {
        self.slot[b as usize]
    }

    /// Byte offset of brick `b` within its subfile, for a given layout
    /// (uniform brick sizes make this `slot * brick_len`; array-level
    /// chunks need a prefix sum over the server's earlier bricks).
    pub fn subfile_offset(&self, b: u64, layout: &Layout) -> u64 {
        match layout {
            Layout::Linear(_) | Layout::Multidim(_) => self.slot_of(b) * layout.brick_len(b),
            Layout::Array(_) => {
                let s = self.server_of(b);
                self.per_server[s]
                    .iter()
                    .take(self.slot_of(b) as usize)
                    .map(|&prior| layout.brick_len(prior))
                    .sum()
            }
        }
    }

    /// The per-server brick lists (catalog `bricklist` columns).
    pub fn bricklists(&self) -> &[Vec<u64>] {
        &self.per_server
    }

    /// Per-server brick counts.
    pub fn loads(&self) -> Vec<usize> {
        self.per_server.iter().map(|l| l.len()).collect()
    }

    /// Per-server *weighted* loads: brick count × performance number.
    pub fn weighted_loads(&self, perf: &[i64]) -> Vec<i64> {
        self.loads()
            .iter()
            .zip(perf)
            .map(|(&n, &p)| n as i64 * p)
            .collect()
    }

    /// Extend the map with `extra` bricks using the same algorithm state
    /// (used when a linear file grows past its declared size).
    pub fn extend(&mut self, extra: u64, perf: Option<&[i64]>) {
        let start = self.assignment.len() as u64;
        let extra_assignment = match perf {
            None => {
                // continue round-robin from where we left off
                (start..start + extra)
                    .map(|b| (b % self.per_server.len() as u64) as usize)
                    .collect::<Vec<_>>()
            }
            Some(perf) => {
                // reconstruct greedy accumulated state and continue
                let mut accumulated: Vec<i64> = self
                    .loads()
                    .iter()
                    .zip(perf)
                    .map(|(&n, &p)| n as i64 * p)
                    .collect();
                let mut ext = Vec::with_capacity(extra as usize);
                for _ in 0..extra {
                    let k = (0..perf.len())
                        .min_by_key(|&k| (accumulated[k] + perf[k], perf[k], k))
                        .expect("non-empty");
                    ext.push(k);
                    accumulated[k] += perf[k];
                }
                ext
            }
        };
        for (i, s) in extra_assignment.into_iter().enumerate() {
            let b = start + i as u64;
            self.slot.push(self.per_server[s].len() as u64);
            self.per_server[s].push(b);
            self.assignment.push(s);
        }
    }

    /// Group a set of `(brick, ...)` items by owning server: returns
    /// `server -> bricks` preserving input order.
    pub fn group_by_server(
        &self,
        bricks: impl IntoIterator<Item = u64>,
    ) -> HashMap<usize, Vec<u64>> {
        let mut groups: HashMap<usize, Vec<u64>> = HashMap::new();
        for b in bricks {
            groups.entry(self.server_of(b)).or_default().push(b);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Shape;
    use crate::hints::HpfPattern;
    use crate::layout::{ArrayLayout, Layout, LinearLayout};

    #[test]
    fn round_robin_matches_paper_fig3() {
        // Figure 3: 32 bricks over 4 devices; device 0 gets 0,4,8,...
        let a = round_robin(32, 4);
        let m = BrickMap::from_assignment(a, 4);
        assert_eq!(m.bricklists()[0], vec![0, 4, 8, 12, 16, 20, 24, 28]);
        assert_eq!(m.bricklists()[3], vec![3, 7, 11, 15, 19, 23, 27, 31]);
        assert_eq!(m.loads(), vec![8, 8, 8, 8]);
    }

    #[test]
    fn greedy_matches_paper_fig9() {
        // Figure 9: the 32-brick file of Figure 3 striped by the greedy
        // algorithm over two fast (P=1) and two slow (P=2) servers:
        // server 0 gets 0,2,6,8,12,14,18,20,24,26,30 (11 bricks),
        // server 1 gets 4,10,16,22,28 (5 bricks),
        // server 2 gets 1,3,7,9,13,15,19,21,25,27,31 (11 bricks),
        // server 3 gets 5,11,17,23,29 (5 bricks).
        let a = greedy(32, &[1, 2, 1, 2]);
        let m = BrickMap::from_assignment(a, 4);
        assert_eq!(
            m.bricklists()[0],
            vec![0, 2, 6, 8, 12, 14, 18, 20, 24, 26, 30]
        );
        assert_eq!(m.bricklists()[1], vec![4, 10, 16, 22, 28]);
        assert_eq!(
            m.bricklists()[2],
            vec![1, 3, 7, 9, 13, 15, 19, 21, 25, 27, 31]
        );
        assert_eq!(m.bricklists()[3], vec![5, 11, 17, 23, 29]);
    }

    #[test]
    fn greedy_3x_ratio() {
        // §8.2: "the greedy algorithm will assign class 1 storage as three
        // times number of bricks as class 3" — P = [1, 3]
        let a = greedy(120, &[1, 3]);
        let m = BrickMap::from_assignment(a, 2);
        assert_eq!(m.loads(), vec![90, 30]);
    }

    #[test]
    fn greedy_uniform_perf_is_balanced() {
        let a = greedy(100, &[1, 1, 1, 1]);
        let m = BrickMap::from_assignment(a, 4);
        assert_eq!(m.loads(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn greedy_weighted_loads_stay_balanced() {
        // invariant: max weighted load - min weighted load <= max perf
        let perf = [1i64, 2, 3, 7];
        let a = greedy(500, &perf);
        let m = BrickMap::from_assignment(a, 4);
        let w = m.weighted_loads(&perf);
        let spread = w.iter().max().unwrap() - w.iter().min().unwrap();
        assert!(spread <= 7, "weighted spread {spread} > max perf");
    }

    #[test]
    fn slots_are_subfile_positions() {
        let m = BrickMap::from_assignment(round_robin(8, 4), 4);
        assert_eq!(m.slot_of(0), 0);
        assert_eq!(m.slot_of(4), 1);
        assert_eq!(m.slot_of(7), 1);
        assert_eq!(m.server_of(6), 2);
    }

    #[test]
    fn from_bricklists_round_trip() {
        let a = greedy(32, &[1, 2, 1, 2]);
        let m = BrickMap::from_assignment(a, 4);
        let lists: Vec<Vec<i64>> = m
            .bricklists()
            .iter()
            .map(|l| l.iter().map(|&b| b as i64).collect())
            .collect();
        let m2 = BrickMap::from_bricklists(&lists).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn from_bricklists_rejects_corruption() {
        // duplicate brick
        assert!(BrickMap::from_bricklists(&[vec![0, 1], vec![1]]).is_err());
        // out-of-range brick
        assert!(BrickMap::from_bricklists(&[vec![0, 5], vec![1]]).is_err());
        // missing brick
        assert!(BrickMap::from_bricklists(&[vec![0, 3], vec![2]]).is_err());
    }

    #[test]
    fn subfile_offsets_uniform_bricks() {
        let m = BrickMap::from_assignment(round_robin(8, 4), 4);
        let layout = Layout::Linear(LinearLayout::new(100, 800).unwrap());
        assert_eq!(m.subfile_offset(0, &layout), 0);
        assert_eq!(m.subfile_offset(4, &layout), 100); // slot 1 on server 0
        assert_eq!(m.subfile_offset(5, &layout), 100); // slot 1 on server 1
    }

    #[test]
    fn subfile_offsets_array_chunks_prefix_sum() {
        // 10x4 array, BLOCK over 4 procs: chunk sizes 12,12,12,4 bytes.
        // 2 servers round-robin: server 0 has chunks 0,2 (offsets 0,12);
        // server 1 has chunks 1,3 (offsets 0,12).
        let layout = Layout::Array(
            ArrayLayout::new(
                Shape::new(vec![10, 4]).unwrap(),
                HpfPattern::block_star(4, 2),
                1,
            )
            .unwrap(),
        );
        let m = BrickMap::from_assignment(round_robin(4, 2), 2);
        assert_eq!(m.subfile_offset(0, &layout), 0);
        assert_eq!(m.subfile_offset(2, &layout), 12);
        assert_eq!(m.subfile_offset(1, &layout), 0);
        assert_eq!(m.subfile_offset(3, &layout), 12);
    }

    #[test]
    fn extend_round_robin_continues_pattern() {
        let mut m = BrickMap::from_assignment(round_robin(6, 4), 4);
        m.extend(4, None);
        assert_eq!(m.num_bricks(), 10);
        assert_eq!(m.server_of(6), 2);
        assert_eq!(m.server_of(9), 1);
        assert_eq!(m.slot_of(8), 2); // server 0: bricks 0, 4, 8
    }

    #[test]
    fn extend_greedy_preserves_ratio() {
        let perf = [1i64, 3];
        let mut m = BrickMap::from_assignment(greedy(40, &perf), 2);
        m.extend(40, Some(&perf));
        assert_eq!(m.loads(), vec![60, 20]);
    }

    #[test]
    fn group_by_server() {
        let m = BrickMap::from_assignment(round_robin(8, 4), 4);
        let groups = m.group_by_server([0u64, 1, 4, 5]);
        assert_eq!(groups[&0], vec![0, 4]);
        assert_eq!(groups[&1], vec![1, 5]);
        assert!(!groups.contains_key(&2));
    }
}
