//! Microbenchmarks: striping algorithms (round-robin vs greedy) at scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpfs_core::{greedy, round_robin, BrickMap};

fn bench_placement(c: &mut Criterion) {
    c.bench_function("round_robin_64k_bricks", |b| {
        b.iter(|| round_robin(black_box(65536), 16).len())
    });
    let perf: Vec<i64> = (0..16).map(|i| 1 + (i % 3) as i64).collect();
    c.bench_function("greedy_64k_bricks_16_servers", |b| {
        b.iter(|| greedy(black_box(65536), &perf).len())
    });
    let assignment = greedy(65536, &perf);
    c.bench_function("brickmap_build_64k", |b| {
        b.iter(|| BrickMap::from_assignment(black_box(assignment.clone()), 16).num_bricks())
    });
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
