//! Microbenchmarks: layout math (region -> brick runs) for the three file
//! levels. These are the client-side CPU costs of the striping methods.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpfs_core::{ArrayLayout, HpfPattern, LinearLayout, MultidimLayout, Region, Shape};

fn bench_layouts(c: &mut Criterion) {
    let shape = Shape::new(vec![2048, 2048]).unwrap();

    let lin = LinearLayout::new(2048, 2048 * 2048).unwrap();
    c.bench_function("linear_map_column_band", |b| {
        b.iter(|| {
            // 2048 strided row segments
            let mut total = 0u64;
            for row in 0..2048u64 {
                for r in lin.map_bytes(black_box(row * 2048), 256, 0) {
                    total += r.len;
                }
            }
            total
        })
    });

    let md = MultidimLayout::new(shape.clone(), Shape::new(vec![64, 64]).unwrap(), 1).unwrap();
    let col_band = Region::new(vec![0, 0], vec![2048, 256]).unwrap();
    c.bench_function("multidim_map_column_band", |b| {
        b.iter(|| md.map_region(black_box(&col_band)).unwrap().len())
    });

    let ar = ArrayLayout::new(shape, HpfPattern::star_block(8, 2), 1).unwrap();
    c.bench_function("array_map_chunk", |b| {
        b.iter(|| {
            ar.map_region(black_box(&ar.chunk_region(3).unwrap()))
                .unwrap()
                .len()
        })
    });
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
