//! Microbenchmarks: wire-protocol encode/decode and framing.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpfs_proto::{frame, Request};

fn bench_codec(c: &mut Criterion) {
    let write_req = Request::Write {
        subfile: "/home/xhshen/dpfs.test".into(),
        ranges: (0..64)
            .map(|i| (i * 4096, Bytes::from(vec![0xABu8; 4096])))
            .collect(),
    };
    c.bench_function("encode_combined_write_64x4k", |b| {
        b.iter(|| black_box(&write_req).encode().len())
    });
    let encoded = write_req.encode();
    c.bench_function("decode_combined_write_64x4k", |b| {
        b.iter(|| Request::decode(black_box(encoded.clone())).unwrap())
    });
    let payload = vec![0x5Au8; 256 * 1024];
    c.bench_function("frame_roundtrip_256k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(payload.len() + 16);
            frame::write_frame(&mut buf, black_box(&payload)).unwrap();
            frame::read_frame(&mut std::io::Cursor::new(&buf))
                .unwrap()
                .len()
        })
    });
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
