//! Microbenchmarks: the embedded SQL metadata engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpfs_meta::Database;

fn bench_sql(c: &mut Criterion) {
    c.bench_function("sql_insert_row", |b| {
        let db = Database::in_memory();
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT, l INTLIST)")
            .unwrap();
        let mut k = 0i64;
        b.iter(|| {
            k += 1;
            db.execute(&format!("INSERT INTO t VALUES ({k}, 'value', [1,2,3])"))
                .unwrap()
        })
    });

    c.bench_function("sql_select_filtered_1k_rows", |b| {
        let db = Database::in_memory();
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            .unwrap();
        for k in 0..1000 {
            db.execute(&format!("INSERT INTO t VALUES ({k}, {})", k % 17))
                .unwrap();
        }
        b.iter(|| {
            db.execute(black_box(
                "SELECT k FROM t WHERE v = 3 ORDER BY k DESC LIMIT 10",
            ))
            .unwrap()
            .rows
            .len()
        })
    });

    c.bench_function("sql_transaction_update", |b| {
        let db = Database::in_memory();
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            .unwrap();
        for k in 0..100 {
            db.execute(&format!("INSERT INTO t VALUES ({k}, 0)"))
                .unwrap();
        }
        b.iter(|| {
            db.transaction(|txn| {
                txn.execute("UPDATE t SET v = v + 1 WHERE k < 50")?;
                Ok(())
            })
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_sql);
criterion_main!(benches);
