//! Microbenchmarks: client brick cache and server subfile store.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpfs_core::BrickCache;
use dpfs_server::SubfileStore;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_hit_4k_brick", |b| {
        let mut cache = BrickCache::new(64 << 20);
        for brick in 0..1024u64 {
            cache.insert(brick, Bytes::from(vec![0u8; 4096]));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            cache.get(black_box(i)).unwrap().len()
        })
    });

    c.bench_function("cache_insert_evict_4k", |b| {
        let mut cache = BrickCache::new(256 * 4096); // 256-brick capacity
        let mut brick = 0u64;
        b.iter(|| {
            brick += 1;
            cache.insert(black_box(brick), Bytes::from(vec![0u8; 4096]));
        })
    });
}

fn bench_subfile(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("dpfs-bench-subfile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SubfileStore::open(&dir, 0).unwrap();
    let payload = Bytes::from(vec![0xAAu8; 64 * 1024]);
    store
        .write_ranges("/bench", &[(0, Bytes::from(vec![0u8; 1 << 20]))])
        .unwrap();

    c.bench_function("subfile_write_64k", |b| {
        let mut off = 0u64;
        b.iter(|| {
            off = (off + 64 * 1024) % (1 << 20);
            store
                .write_ranges("/bench", &[(off, payload.clone())])
                .unwrap()
        })
    });

    c.bench_function("subfile_read_64k", |b| {
        let mut off = 0u64;
        b.iter(|| {
            off = (off + 64 * 1024) % (1 << 20);
            store
                .read_ranges("/bench", &[(off, 64 * 1024)])
                .unwrap()
                .len()
        })
    });

    c.bench_function("subfile_scatter_read_16x4k", |b| {
        let ranges: Vec<(u64, u64)> = (0..16u64).map(|i| (i * 65536, 4096)).collect();
        b.iter(|| {
            store
                .read_ranges("/bench", black_box(&ranges))
                .unwrap()
                .len()
        })
    });
}

criterion_group!(benches, bench_cache, bench_subfile);
criterion_main!(benches);
