//! Table rendering for the figure binaries.

use crate::figures::{LevelRow, StripingRow};

/// Print a Figure 11/12-style table.
pub fn print_file_level_table(title: &str, rows: &[LevelRow]) {
    println!("{title}");
    println!(
        "{:<8} {:>8} {:>13} {:>9} {:>15} {:>8} {:>12}",
        "class", "linear", "comb-linear", "multidim", "comb-multidim", "array", "comb-array"
    );
    for r in rows {
        println!(
            "{:<8} {:>8.2} {:>13.2} {:>9.2} {:>15.2} {:>8.2} {:>12.2}",
            r.class.name(),
            r.linear,
            r.combined_linear,
            r.multidim,
            r.combined_multidim,
            r.array,
            r.combined_array
        );
    }
    println!();
    for r in rows {
        println!(
            "shape[{}]: multidim/linear = {:.1}x, array/multidim = {:.1}x, comb-linear/linear = {:.2}x, comb-multidim/multidim = {:.2}x, comb-array/array = {:.2}x",
            r.class.name(),
            r.multidim / r.linear,
            r.array / r.multidim,
            r.combined_linear / r.linear,
            r.combined_multidim / r.multidim,
            r.combined_array / r.array,
        );
    }
    println!();
}

/// Print a Figure 13/14-style table.
pub fn print_striping_table(title: &str, rows: &[StripingRow]) {
    println!("{title}");
    println!(
        "{:<12} {:>8} {:>12} {:>8} {:>12}",
        "algorithm", "write", "comb-write", "read", "comb-read"
    );
    for r in rows {
        println!(
            "{:<12} {:>8.2} {:>12.2} {:>8.2} {:>12.2}",
            r.algorithm, r.write, r.combined_write, r.read, r.combined_read
        );
    }
    if rows.len() == 2 {
        let (rr, g) = (&rows[0], &rows[1]);
        println!();
        println!(
            "shape: greedy/round-robin = write {:.2}x, comb-write {:.2}x, read {:.2}x, comb-read {:.2}x",
            g.write / rr.write,
            g.combined_write / rr.combined_write,
            g.read / rr.read,
            g.combined_read / rr.combined_read,
        );
    }
    println!();
}
