//! Workloads reproducing the paper's Figures 11–14.

use dpfs_cluster::{run_clients, Testbed};
use dpfs_core::{Granularity, Hint, HpfPattern, Placement, Region, Shape};
use dpfs_server::StorageClass;

/// Workload scale. `Full` mirrors the paper's request-count structure
/// (thousands of linear bricks); `Quick` shrinks everything for smoke
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigScale {
    Full,
    Quick,
}

impl FigScale {
    /// Read from `DPFS_BENCH_SCALE` (`quick` ⇒ Quick, anything else Full).
    pub fn from_env() -> FigScale {
        match std::env::var("DPFS_BENCH_SCALE").as_deref() {
            Ok("quick") => FigScale::Quick,
            _ => FigScale::Full,
        }
    }

    /// Array side length `n` (the paper's 32K×32K array, scaled).
    pub fn array_side(self) -> u64 {
        match self {
            FigScale::Full => 2048,
            FigScale::Quick => 256,
        }
    }

    /// Multidim brick side (the paper's 256×256 striping unit, scaled).
    pub fn md_brick_side(self) -> u64 {
        match self {
            FigScale::Full => 64,
            FigScale::Quick => 32,
        }
    }
}

/// One row of the Figure 11/12 table: bandwidth in MB/s per configuration
/// for one storage class.
#[derive(Debug, Clone)]
pub struct LevelRow {
    pub class: StorageClass,
    pub linear: f64,
    pub combined_linear: f64,
    pub multidim: f64,
    pub combined_multidim: f64,
    pub array: f64,
    pub combined_array: f64,
}

/// One row of the Figure 13/14 table.
#[derive(Debug, Clone)]
pub struct StripingRow {
    pub algorithm: &'static str,
    pub write: f64,
    pub combined_write: f64,
    pub read: f64,
    pub combined_read: f64,
}

/// Populate a file of `level` for the figure workload and return its path.
///
/// The data file is an `n×n` byte array (the paper's 32K×32K array). For
/// linear and multidim levels the writers fill row bands (the natural
/// generation order, `(BLOCK, *)`); for the array level the file is
/// chunked `(*, BLOCK(compute))` per the user's hint, each writer dumping
/// its own chunk.
fn create_level_file(
    tb: &Testbed,
    level: &str,
    compute: usize,
    scale: FigScale,
    combine: bool,
) -> String {
    let n = scale.array_side();
    let path = format!("/fig/{level}");
    let shape = Shape::new(vec![n, n]).unwrap();
    let hint = match level {
        "linear" => Hint::linear(n, n * n), // brick = one row of bytes
        "multidim" => Hint::multidim(
            shape.clone(),
            Shape::new(vec![scale.md_brick_side(), scale.md_brick_side()]).unwrap(),
            1,
        ),
        "array" => Hint::array(shape.clone(), HpfPattern::star_block(compute as u64, 2), 1),
        other => panic!("unknown level {other}"),
    };
    let creator = tb.client(0, combine);
    if !creator.dir_exists("/fig").unwrap() {
        creator.mkdir("/fig").unwrap();
    }
    if creator.exists(&path).unwrap() {
        creator.unlink(&path).unwrap();
    }
    creator.create(&path, &hint).unwrap();

    // parallel write
    let rows_per = n / compute as u64;
    run_clients(tb, compute, combine, Granularity::Brick, |rank, client| {
        let mut f = client.open(&path).unwrap();
        let data = vec![(rank % 251) as u8; (rows_per * n) as usize];
        match level {
            "linear" => {
                f.write_bytes(rank as u64 * rows_per * n, &data).unwrap();
            }
            "multidim" => {
                let region =
                    Region::new(vec![rank as u64 * rows_per, 0], vec![rows_per, n]).unwrap();
                f.write_region(&region, &data).unwrap();
            }
            "array" => {
                // checkpoint dump: each processor writes its own chunk
                let chunk = f.chunk_region(rank as u64).unwrap();
                let data = vec![(rank % 251) as u8; (chunk.volume()) as usize];
                f.write_chunk(rank as u64, &data).unwrap();
            }
            _ => unreachable!(),
        }
        data.len() as u64
    });
    path
}

/// Measure `(*, BLOCK)` read bandwidth over the populated file.
/// Repetitions per measurement; the best (max bandwidth) is reported, which
/// filters scheduler noise on a shared machine.
const REPS: usize = 2;

fn measure_star_block_read(
    tb: &Testbed,
    path: &str,
    level: &str,
    compute: usize,
    scale: FigScale,
    combine: bool,
) -> f64 {
    let n = scale.array_side();
    let cols_per = n / compute as u64;
    let mut best = 0f64;
    for _ in 0..REPS {
        let bw = run_clients(tb, compute, combine, Granularity::Brick, |rank, client| {
            let mut f = client.open(path).unwrap();
            match level {
                "linear" => {
                    // a column band of a row-major byte array: one run per row
                    let dt = dpfs_core::Datatype::subarray(
                        Shape::new(vec![n, n]).unwrap(),
                        Region::new(vec![0, rank as u64 * cols_per], vec![n, cols_per]).unwrap(),
                        1,
                    )
                    .unwrap();
                    let data = f.read_datatype(0, &dt).unwrap();
                    data.len() as u64
                }
                "multidim" | "array" => {
                    let region =
                        Region::new(vec![0, rank as u64 * cols_per], vec![n, cols_per]).unwrap();
                    let data = f.read_region(&region).unwrap();
                    data.len() as u64
                }
                _ => unreachable!(),
            }
        });
        best = best.max(bw.mbytes_per_sec());
    }
    best
}

/// Figure 11/12: file-level comparison on a single storage class.
pub fn file_level_row(class: StorageClass, compute: usize, io: usize, scale: FigScale) -> LevelRow {
    let mut values = [0f64; 6];
    for (i, (level, combine)) in [
        ("linear", false),
        ("linear", true),
        ("multidim", false),
        ("multidim", true),
        ("array", false),
        ("array", true),
    ]
    .iter()
    .enumerate()
    {
        let tb = Testbed::homogeneous(io, class).unwrap();
        let path = create_level_file(&tb, level, compute, scale, true);
        values[i] = measure_star_block_read(&tb, &path, level, compute, scale, *combine);
    }
    LevelRow {
        class,
        linear: values[0],
        combined_linear: values[1],
        multidim: values[2],
        combined_multidim: values[3],
        array: values[4],
        combined_array: values[5],
    }
}

/// All three classes for Figure 11 (8/4) or Figure 12 (16/8).
pub fn file_level_figure(compute: usize, io: usize, scale: FigScale) -> Vec<LevelRow> {
    [
        StorageClass::Class1,
        StorageClass::Class2,
        StorageClass::Class3,
    ]
    .into_iter()
    .map(|c| file_level_row(c, compute, io, scale))
    .collect()
}

/// Figure 13/14 workload: linear-level file over half class-1 / half
/// class-3 storage; each client writes then reads a contiguous block.
pub fn striping_figure(compute: usize, io: usize, scale: FigScale) -> Vec<StripingRow> {
    let n = scale.array_side();
    let file_bytes = n * n; // same volume as the level figure
    let brick = n * 2; // paper-style fine-grained linear bricks
    let block = file_bytes / compute as u64;

    let mut rows = Vec::new();
    for (algorithm, placement) in [
        ("round-robin", Placement::RoundRobin),
        ("greedy", Placement::Greedy),
    ] {
        let mut vals = [0f64; 4]; // write, comb write, read, comb read
        for (i, combine) in [false, true].into_iter().enumerate() {
            let tb = Testbed::mixed(io, &[StorageClass::Class1, StorageClass::Class3]).unwrap();
            let path = "/fig/stripe";
            let client0 = tb.client(0, combine);
            client0.mkdir("/fig").unwrap();
            let hint = Hint::linear(brick, file_bytes).with_placement(placement);
            client0.create(path, &hint).unwrap();

            // write phase (best of REPS)
            for _ in 0..REPS {
                let w = run_clients(&tb, compute, combine, Granularity::Brick, |rank, client| {
                    let mut f = client.open(path).unwrap();
                    let data = vec![rank as u8; block as usize];
                    f.write_bytes(rank as u64 * block, &data).unwrap();
                    block
                });
                vals[i] = vals[i].max(w.mbytes_per_sec());
            }

            // read phase (best of REPS)
            for _ in 0..REPS {
                let r = run_clients(&tb, compute, combine, Granularity::Brick, |rank, client| {
                    let mut f = client.open(path).unwrap();
                    let data = f.read_bytes(rank as u64 * block, block).unwrap();
                    data.len() as u64
                });
                vals[i + 2] = vals[i + 2].max(r.mbytes_per_sec());
            }
        }
        rows.push(StripingRow {
            algorithm,
            write: vals[0],
            combined_write: vals[1],
            read: vals[2],
            combined_read: vals[3],
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-scale smoke: the figure machinery runs end to end and the
    /// headline shape holds (multidim beats linear on columnar reads).
    #[test]
    fn quick_scale_level_shape() {
        let scale = FigScale::Quick;
        let row = file_level_row(StorageClass::Class1, 4, 2, scale);
        assert!(
            row.multidim > row.linear,
            "multidim {} must beat linear {}",
            row.multidim,
            row.linear
        );
        assert!(
            row.array > row.linear,
            "array {} must beat linear {}",
            row.array,
            row.linear
        );
    }

    #[test]
    fn quick_scale_striping_runs() {
        let rows = striping_figure(4, 4, FigScale::Quick);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.write > 0.0 && r.read > 0.0));
    }
}
