//! Ablation studies on DPFS design choices beyond the paper's figures:
//! brick-size sweep, read granularity (brick vs exact), the staggered
//! schedule, I/O-node scaling, the client-side brick cache, parallel vs
//! serial per-server dispatch, and transport pipelining depth.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use dpfs_cluster::{run_clients, NodeSpec, Testbed};
use dpfs_core::{ClientOptions, Granularity, Hint, Region, Shape};
use dpfs_server::{PerfModel, StorageClass};

use crate::figures::FigScale;

/// One `(label, mbytes_per_sec)` data point.
pub type Point = (String, f64);

/// Brick-size sweep: contiguous block-per-client read over a linear file,
/// combined requests, class-3 storage. Small bricks drown in per-request
/// and per-seek overhead; huge bricks lose parallelism (fewer bricks than
/// servers).
pub fn brick_size_sweep(scale: FigScale) -> Vec<Point> {
    let n = scale.array_side();
    let file_bytes = n * n / 2;
    let clients = 8;
    let block = file_bytes / clients as u64;
    let mut out = Vec::new();
    for brick in [
        file_bytes / 2048,
        file_bytes / 512,
        file_bytes / 128,
        file_bytes / 32,
        file_bytes / 8,
    ] {
        let tb = Testbed::homogeneous(4, StorageClass::Class3).unwrap();
        let client0 = tb.client(0, true);
        client0
            .create("/sweep", &Hint::linear(brick, file_bytes))
            .unwrap();
        run_clients(&tb, clients, true, Granularity::Brick, |rank, c| {
            let mut f = c.open("/sweep").unwrap();
            f.write_bytes(rank as u64 * block, &vec![rank as u8; block as usize])
                .unwrap();
            block
        });
        let bw = run_clients(&tb, clients, true, Granularity::Brick, |rank, c| {
            let mut f = c.open("/sweep").unwrap();
            f.read_bytes(rank as u64 * block, block).unwrap();
            block
        });
        out.push((format!("brick={brick}B"), bw.mbytes_per_sec()));
    }
    out
}

/// Granularity ablation: `(*, BLOCK)` read on a *linear* file where whole
/// bricks are mostly waste. Exact ranges (data-sieving style) trade
/// request count for useful-byte efficiency.
pub fn granularity_ablation(scale: FigScale) -> Vec<Point> {
    let n = scale.array_side();
    let mut out = Vec::new();
    for (label, granularity) in [
        ("brick-granularity", Granularity::Brick),
        ("exact-ranges", Granularity::Exact),
    ] {
        let tb = Testbed::homogeneous(4, StorageClass::Class3).unwrap();
        let client0 = tb.client(0, true);
        client0.create("/g", &Hint::linear(n, n * n)).unwrap();
        {
            let mut f = client0.open("/g").unwrap();
            // fill in row bands to keep setup fast
            let band = vec![7u8; (n * n / 8) as usize];
            for i in 0..8 {
                f.write_bytes(i * n * n / 8, &band).unwrap();
            }
        }
        let clients = 8;
        let cols = n / clients as u64;
        let shape = Shape::new(vec![n, n]).unwrap();
        let bw = run_clients(&tb, clients, true, granularity, |rank, c| {
            let mut f = c.open("/g").unwrap();
            let dt = dpfs_core::Datatype::subarray(
                shape.clone(),
                Region::new(vec![0, rank as u64 * cols], vec![n, cols]).unwrap(),
                1,
            )
            .unwrap();
            f.read_datatype(0, &dt).unwrap().len() as u64
        });
        out.push((label.to_string(), bw.mbytes_per_sec()));
    }
    out
}

/// Staggered-schedule ablation: combined reads with the paper's staggered
/// start (client k begins at server k) vs every client starting at server
/// 0 (convoy).
pub fn stagger_ablation(scale: FigScale) -> Vec<Point> {
    let n = scale.array_side();
    let file_bytes = n * n / 2;
    let clients = 8usize;
    let block = file_bytes / clients as u64;
    let mut out = Vec::new();
    for (label, stagger) in [
        ("staggered", true),
        ("convoy (all start at server 0)", false),
    ] {
        let tb = Testbed::homogeneous(8, StorageClass::Class3).unwrap();
        let client0 = tb.client(0, true);
        client0
            .create("/st", &Hint::linear(file_bytes / 256, file_bytes))
            .unwrap();
        run_clients(&tb, clients, true, Granularity::Brick, |rank, c| {
            let mut f = c.open("/st").unwrap();
            f.write_bytes(rank as u64 * block, &vec![1u8; block as usize])
                .unwrap();
            block
        });
        // manual client pool so we control the rank used for staggering
        let barrier = Barrier::new(clients + 1);
        let mut elapsed = std::time::Duration::ZERO;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for rank in 0..clients {
                let effective_rank = if stagger { rank } else { 0 };
                let client = tb.client_with(effective_rank, true, Granularity::Brick);
                let barrier = &barrier;
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    let mut f = client.open("/st").unwrap();
                    f.read_bytes(rank as u64 * block, block).unwrap();
                }));
            }
            barrier.wait();
            let start = Instant::now();
            for h in handles {
                h.join().unwrap();
            }
            elapsed = start.elapsed();
        });
        let mbps = (block * clients as u64) as f64 / 1e6 / elapsed.as_secs_f64();
        out.push((label.to_string(), mbps));
    }
    out
}

/// I/O-node scaling: `(*, BLOCK)` multidim read bandwidth as servers
/// double, fixed 8 clients.
pub fn io_node_scaling(scale: FigScale) -> Vec<Point> {
    let n = scale.array_side();
    let md = scale.md_brick_side();
    let shape = Shape::new(vec![n, n]).unwrap();
    let mut out = Vec::new();
    for servers in [1usize, 2, 4, 8] {
        let tb = Testbed::homogeneous(servers, StorageClass::Class3).unwrap();
        let client0 = tb.client(0, true);
        client0
            .create(
                "/scale",
                &Hint::multidim(shape.clone(), Shape::new(vec![md, md]).unwrap(), 1),
            )
            .unwrap();
        let clients = 8;
        let rows = n / clients as u64;
        run_clients(&tb, clients, true, Granularity::Brick, |rank, c| {
            let mut f = c.open("/scale").unwrap();
            let region = Region::new(vec![rank as u64 * rows, 0], vec![rows, n]).unwrap();
            f.write_region(&region, &vec![3u8; (rows * n) as usize])
                .unwrap();
            rows * n
        });
        let cols = n / clients as u64;
        let bw = run_clients(&tb, clients, true, Granularity::Brick, |rank, c| {
            let mut f = c.open("/scale").unwrap();
            let region = Region::new(vec![0, rank as u64 * cols], vec![n, cols]).unwrap();
            f.read_region(&region).unwrap().len() as u64
        });
        out.push((format!("{servers} server(s)"), bw.mbytes_per_sec()));
    }
    out
}

/// Client-cache ablation: one client re-reads a hot region many times.
pub fn cache_ablation(scale: FigScale) -> Vec<Point> {
    let n = scale.array_side() / 2;
    let md = scale.md_brick_side();
    let shape = Shape::new(vec![n, n]).unwrap();
    let mut out = Vec::new();
    for (label, cache_bytes) in [("no cache", 0u64), ("brick cache", 64 << 20)] {
        let tb = Testbed::homogeneous(4, StorageClass::Class3).unwrap();
        let client = tb.client(0, true);
        client
            .create(
                "/hot",
                &Hint::multidim(shape.clone(), Shape::new(vec![md, md]).unwrap(), 1),
            )
            .unwrap();
        let mut f = client.open("/hot").unwrap();
        f.write_region(&shape.full_region(), &vec![9u8; (n * n) as usize])
            .unwrap();
        let mut f = client.open("/hot").unwrap();
        if cache_bytes > 0 {
            f.enable_cache(cache_bytes);
        }
        let hot = Region::new(vec![0, 0], vec![n / 2, n / 2]).unwrap();
        let rounds = 10u64;
        let start = Instant::now();
        let mut bytes = 0u64;
        for _ in 0..rounds {
            bytes += f.read_region(&hot).unwrap().len() as u64;
        }
        let mbps = bytes as f64 / 1e6 / start.elapsed().as_secs_f64();
        out.push((label.to_string(), mbps));
    }
    out
}

/// Dispatch ablation: one client issuing combined accesses striped over
/// every server — parallel per-server dispatch (scoped-thread fan-out) vs
/// the original serial request loop. With combination on, a single client's
/// access becomes one request per server; overlapping them bounds the cost
/// by the slowest server instead of the sum.
pub fn dispatch_ablation(scale: FigScale) -> Vec<Point> {
    let n = scale.array_side();
    let file_bytes = n * n / 2;
    let servers = 4usize;
    // one brick per server: each combined read is exactly one request each
    let brick = file_bytes / servers as u64;
    let mut out = Vec::new();
    for (label, serial) in [("parallel dispatch", false), ("serial dispatch", true)] {
        let tb = Testbed::homogeneous(servers, StorageClass::Class3).unwrap();
        let client = tb.client_opts(ClientOptions {
            serial_dispatch: serial,
            ..ClientOptions::default()
        });
        client
            .create("/d", &Hint::linear(brick, file_bytes))
            .unwrap();
        let mut f = client.open("/d").unwrap();
        f.write_bytes(0, &vec![4u8; file_bytes as usize]).unwrap();
        let rounds = 4u64;
        let start = Instant::now();
        let mut bytes = 0u64;
        for _ in 0..rounds {
            bytes += f.read_bytes(0, file_bytes).unwrap().len() as u64;
        }
        let mbps = bytes as f64 / 1e6 / start.elapsed().as_secs_f64();
        out.push((label.to_string(), mbps));
    }
    out
}

/// Transport-pipelining ablation: two file handles of ONE client — hence
/// sharing one connection per server — each stream combined reads of their
/// own file. The delay model is pure per-request latency (no device time),
/// isolating what the wire layer can overlap:
///
/// - **multiplexed** (this PR): both handles' requests ride the shared
///   connections concurrently under distinct correlation IDs;
/// - **lockstep** (PR 1 baseline): one in-flight RPC per server connection,
///   so the handles' round-trips to each server serialize;
/// - **serial** (PR 0 baseline): each handle additionally issues its own
///   per-server requests one at a time.
pub fn pipeline_ablation(scale: FigScale) -> Vec<Point> {
    let latency = Duration::from_millis(5);
    let model = PerfModel {
        request_latency: latency,
        bandwidth: u64::MAX,
        seek_latency: Duration::ZERO,
    };
    let servers = 4usize;
    let n = scale.array_side();
    let file_bytes = n * n / 8;
    // one brick per server: a combined read is exactly one request per server
    let brick = file_bytes / servers as u64;
    let handles = 2usize;
    let rounds = match scale {
        FigScale::Full => 16u64,
        FigScale::Quick => 6,
    };
    let mut out = Vec::new();
    for (label, opts) in [
        (
            "multiplexed connections (pipelined)",
            ClientOptions::default(),
        ),
        (
            "lockstep connections (PR 1)",
            ClientOptions {
                lockstep_rpc: true,
                ..ClientOptions::default()
            },
        ),
        (
            "serial dispatch",
            ClientOptions {
                serial_dispatch: true,
                ..ClientOptions::default()
            },
        ),
    ] {
        let specs: Vec<NodeSpec> = (0..servers)
            .map(|i| NodeSpec::with_model(i, model))
            .collect();
        let tb = Testbed::start(&specs).unwrap();
        let client = tb.client_opts(opts);
        for h in 0..handles {
            let path = format!("/p{h}");
            client
                .create(&path, &Hint::linear(brick, file_bytes))
                .unwrap();
            let mut f = client.open(&path).unwrap();
            f.write_bytes(0, &vec![1u8; file_bytes as usize]).unwrap();
        }
        let barrier = Barrier::new(handles + 1);
        let client = &client;
        let mut elapsed = Duration::ZERO;
        let mut bytes = 0u64;
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..handles)
                .map(|h| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let mut f = client.open(&format!("/p{h}")).unwrap();
                        barrier.wait();
                        let mut bytes = 0u64;
                        for _ in 0..rounds {
                            bytes += f.read_bytes(0, file_bytes).unwrap().len() as u64;
                        }
                        bytes
                    })
                })
                .collect();
            barrier.wait();
            let start = Instant::now();
            for w in workers {
                bytes += w.join().unwrap();
            }
            elapsed = start.elapsed();
        });
        let mbps = bytes as f64 / 1e6 / elapsed.as_secs_f64();
        out.push((label.to_string(), mbps));
    }
    out
}

/// Metadata-service ablation: an open/stat-heavy workload (tiny files, no
/// meaningful data transfer) against (a) the embedded in-process catalog,
/// (b) a networked `dpfs-metad` with the client cache disabled — every
/// open costs an attr + distribution + server-row RPC, every stat an attr
/// RPC — and (c) the daemon with the generation-validated client cache,
/// which collapses repeat stats to nothing and repeat opens to one tiny
/// `Generation` RPC. Reported in metadata operations per second.
pub fn metadata_ablation(scale: FigScale) -> Vec<Point> {
    let files = match scale {
        FigScale::Full => 24usize,
        FigScale::Quick => 6,
    };
    let rounds = match scale {
        FigScale::Full => 40u64,
        FigScale::Quick => 12,
    };
    let stats_per_open = 8u64;
    let mut out = Vec::new();
    for (label, mode) in [
        ("embedded catalog (in-process)", 0u8),
        ("remote metad, no client cache", 1),
        ("remote metad + client cache", 2),
    ] {
        let tb = if mode == 0 {
            Testbed::unthrottled(2).unwrap()
        } else {
            Testbed::unthrottled_with_metad(2).unwrap()
        };
        let client = match mode {
            0 => tb.client(0, true),
            1 => tb.remote_client_opts(ClientOptions {
                meta_cache: false,
                ..ClientOptions::default()
            }),
            _ => tb.remote_client(0, true),
        };
        for i in 0..files {
            let mut f = client
                .create(&format!("/m{i}"), &Hint::linear(4096, 4096))
                .unwrap();
            f.write_bytes(0, &[1u8; 64]).unwrap();
            f.close().unwrap();
        }
        let start = Instant::now();
        let mut ops = 0u64;
        for _ in 0..rounds {
            for i in 0..files {
                let path = format!("/m{i}");
                client.open(&path).unwrap();
                for _ in 0..stats_per_open {
                    client.stat(&path).unwrap();
                }
                ops += 1 + stats_per_open;
            }
        }
        let per_sec = ops as f64 / start.elapsed().as_secs_f64();
        out.push((label.to_string(), per_sec));
    }
    out
}

/// List-I/O ablation: one client reading the whole striped file at exact
/// granularity. Client-side enumeration must keep one range per brick —
/// each range is its own framed chunk, and the bricks a server holds land
/// at non-adjacent buffer positions — so every brick pays a simulated
/// seek. The pattern descriptor coalesces ranges adjacent in *subfile*
/// space regardless of buffer layout, so each server does one seek and
/// one stream per round.
pub fn list_io_ablation(scale: FigScale) -> Vec<Point> {
    let n = scale.array_side();
    let servers = 4usize;
    let bricks_per_server = 16u64;
    let brick = (n * n / 8 / (servers as u64 * bricks_per_server)).max(64);
    let file_bytes = brick * servers as u64 * bricks_per_server;
    let model = PerfModel {
        request_latency: Duration::from_micros(500),
        bandwidth: 200 << 20,
        seek_latency: Duration::from_millis(2),
    };
    let specs: Vec<NodeSpec> = (0..servers)
        .map(|i| NodeSpec::with_model(i, model))
        .collect();
    let mut out = Vec::new();
    for (label, list_io) in [
        ("list-io (pattern descriptor)", true),
        ("enumerated ranges (combined)", false),
    ] {
        let tb = Testbed::start(&specs).unwrap();
        let client = tb.client_opts(ClientOptions {
            list_io,
            granularity: Granularity::Exact,
            ..ClientOptions::default()
        });
        client
            .create("/list", &Hint::linear(brick, file_bytes))
            .unwrap();
        let mut f = client.open("/list").unwrap();
        f.write_bytes(0, &vec![3u8; file_bytes as usize]).unwrap();
        let rounds = 3u64;
        let start = Instant::now();
        let mut bytes = 0u64;
        for _ in 0..rounds {
            bytes += f.read_bytes(0, file_bytes).unwrap().len() as u64;
        }
        let mbps = bytes as f64 / 1e6 / start.elapsed().as_secs_f64();
        out.push((label.to_string(), mbps));
    }
    out
}

/// Render a list of points as an aligned table.
pub fn print_points(title: &str, points: &[Point]) {
    println!("{title}");
    let width = points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, mbps) in points {
        println!("  {label:<width$}  {mbps:>8.2} MB/s");
    }
    println!();
}

/// Render a list of points whose values are operations per second.
pub fn print_ops_points(title: &str, points: &[Point]) {
    println!("{title}");
    let width = points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, ops) in points {
        println!("  {label:<width$}  {ops:>10.0} ops/s");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ablation_cache_wins() {
        let pts = cache_ablation(FigScale::Quick);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].1 > pts[0].1,
            "cached {} must beat uncached {}",
            pts[1].1,
            pts[0].1
        );
    }

    #[test]
    fn granularity_ablation_runs() {
        let pts = granularity_ablation(FigScale::Quick);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|(_, v)| *v > 0.0));
    }

    #[test]
    fn pipeline_ablation_multiplexed_wins() {
        let pts = pipeline_ablation(FigScale::Quick);
        assert_eq!(pts.len(), 3);
        let (multiplexed, lockstep, serial) = (pts[0].1, pts[1].1, pts[2].1);
        assert!(
            multiplexed > lockstep,
            "multiplexed {multiplexed} MB/s must beat lockstep {lockstep} MB/s"
        );
        assert!(
            multiplexed > serial,
            "multiplexed {multiplexed} MB/s must beat serial {serial} MB/s"
        );
    }

    #[test]
    fn metadata_ablation_cache_wins_over_uncached_remote() {
        let pts = metadata_ablation(FigScale::Quick);
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|(_, v)| *v > 0.0));
        assert!(
            pts[2].1 > pts[1].1,
            "cached remote {} ops/s must beat uncached remote {} ops/s",
            pts[2].1,
            pts[1].1
        );
    }

    #[test]
    fn list_io_ablation_pattern_wins() {
        let pts = list_io_ablation(FigScale::Quick);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[0].1 > pts[1].1,
            "list I/O {} MB/s must beat enumerated ranges {} MB/s",
            pts[0].1,
            pts[1].1
        );
    }

    #[test]
    fn dispatch_ablation_parallel_wins() {
        let pts = dispatch_ablation(FigScale::Quick);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[0].1 > pts[1].1,
            "parallel {} MB/s must beat serial {} MB/s",
            pts[0].1,
            pts[1].1
        );
    }
}
