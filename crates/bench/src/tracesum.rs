//! Summaries of exported trace events: per-`(side, phase)` counts, total
//! and mean durations, and latency percentiles. Backs the
//! `trace-summarize` CLI (which re-parses the JSONL the ablation harness
//! exports) and the phase table embedded in bench reports.

use std::collections::BTreeMap;

use dpfs_core::trace::{Histogram, Side, TraceEvent};

/// Durations aggregated for one `(side, phase)` pair.
struct PhaseAgg {
    count: u64,
    sum_ns: u64,
    bytes: u64,
    hist: Histogram,
}

impl PhaseAgg {
    fn new() -> PhaseAgg {
        PhaseAgg {
            count: 0,
            sum_ns: 0,
            bytes: 0,
            hist: Histogram::new(),
        }
    }

    fn add(&mut self, dur_ns: u64, bytes: u64) {
        self.count += 1;
        self.sum_ns += dur_ns;
        self.bytes += bytes;
        self.hist.record(dur_ns);
    }
}

/// Accumulates spans keyed by `(side, phase)` and renders them as an
/// aligned table, percentiles included.
pub struct TraceSummary {
    aggs: BTreeMap<(String, String), PhaseAgg>,
    events: u64,
}

impl Default for TraceSummary {
    fn default() -> TraceSummary {
        TraceSummary::new()
    }
}

impl TraceSummary {
    pub fn new() -> TraceSummary {
        TraceSummary {
            aggs: BTreeMap::new(),
            events: 0,
        }
    }

    /// Fold in one span.
    pub fn add(&mut self, side: &str, phase: &str, dur_ns: u64, bytes: u64) {
        self.aggs
            .entry((side.to_string(), phase.to_string()))
            .or_insert_with(PhaseAgg::new)
            .add(dur_ns, bytes);
        self.events += 1;
    }

    /// Fold in ring events (e.g. `ring().events_since(cursor)`).
    pub fn add_events(&mut self, events: &[TraceEvent]) {
        for ev in events {
            let side = match ev.side {
                Side::Client => "client",
                Side::Server => "server",
            };
            self.add(side, ev.phase, ev.dur_ns, ev.bytes);
        }
    }

    /// Total spans folded in so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Spans recorded for `phase`, summed across sides. Backs the CLI's
    /// `--require-phase` gate (e.g. CI asserting the chaos run actually
    /// recorded `retry` spans).
    pub fn phase_count(&self, phase: &str) -> u64 {
        self.aggs
            .iter()
            .filter(|((_, p), _)| p == phase)
            .map(|(_, agg)| agg.count)
            .sum()
    }

    /// Render the per-phase table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "{:<8} {:<8} {:>9} {:>12} {:>10} {:<20}",
            "side", "phase", "count", "total_ms", "mean_us", "p50/p95/p99 us"
        )
        .unwrap();
        for ((side, phase), agg) in &self.aggs {
            let snap = agg.hist.snapshot();
            writeln!(
                out,
                "{:<8} {:<8} {:>9} {:>12.2} {:>10.1} {:<20}",
                side,
                phase,
                agg.count,
                agg.sum_ns as f64 / 1e6,
                agg.sum_ns as f64 / agg.count.max(1) as f64 / 1e3,
                snap.summary_us()
            )
            .unwrap();
        }
        out
    }
}

/// Parse one exported JSONL line's relevant fields. The exporter's field
/// order is stable but this matches by key, not position.
fn parse_line(line: &str) -> Option<(String, String, u64, u64)> {
    Some((
        extract_str(line, "side")?,
        extract_str(line, "phase")?,
        extract_u64(line, "dur_ns")?,
        extract_u64(line, "bytes")?,
    ))
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    // side/phase/kind values are fixed identifiers — no escapes to undo.
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Summarize a JSONL trace export. `Err` when the input holds no events
/// or any non-blank line fails to parse — CI uses this to fail the build
/// if the ablation harness exported a broken or empty trace.
pub fn summarize_jsonl(text: &str) -> Result<String, String> {
    summarize_jsonl_requiring(text, &[])
}

/// Like [`summarize_jsonl`], additionally failing unless every phase in
/// `required` appears at least once. CI's chaos step uses this to prove
/// the fault schedule really exercised the retry layer, not just that
/// traces were exported.
pub fn summarize_jsonl_requiring(text: &str, required: &[String]) -> Result<String, String> {
    let mut summary = TraceSummary::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (side, phase, dur_ns, bytes) =
            parse_line(line).ok_or_else(|| format!("line {}: unparseable event: {line}", i + 1))?;
        summary.add(&side, &phase, dur_ns, bytes);
    }
    if summary.events() == 0 {
        return Err("no trace events".to_string());
    }
    for phase in required {
        if summary.phase_count(phase) == 0 {
            return Err(format!("required phase '{phase}' has no spans"));
        }
    }
    Ok(format!("{} events\n{}", summary.events(), summary.render()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpfs_core::trace::export_jsonl;

    fn ev(side: Side, phase: &'static str, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            trace_id: 9,
            side,
            phase,
            kind: "read",
            server: "ion0".to_string(),
            start_ns: 0,
            dur_ns,
            bytes: 128,
        }
    }

    #[test]
    fn summarize_round_trips_exported_events() {
        let events = vec![
            ev(Side::Client, "rpc", 2_000_000),
            ev(Side::Client, "rpc", 4_000_000),
            ev(Side::Server, "queue", 500_000),
        ];
        let text = export_jsonl(&events);
        let table = summarize_jsonl(&text).unwrap();
        assert!(table.contains("3 events"), "{table}");
        assert!(table.contains("client"), "{table}");
        assert!(table.contains("rpc"), "{table}");
        assert!(table.contains("queue"), "{table}");
        // rpc total = 6ms
        assert!(table.contains("6.00"), "{table}");
    }

    #[test]
    fn summarize_rejects_empty_and_garbage() {
        assert!(summarize_jsonl("").is_err());
        assert!(summarize_jsonl("\n  \n").is_err());
        let err = summarize_jsonl("{\"nope\":1}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn require_phase_gates_on_presence() {
        let events = vec![
            ev(Side::Client, "rpc", 2_000_000),
            ev(Side::Client, "retry", 1_000_000),
        ];
        let text = export_jsonl(&events);
        assert!(summarize_jsonl_requiring(&text, &["retry".to_string()]).is_ok());
        let err = summarize_jsonl_requiring(&text, &["degraded".to_string()]).unwrap_err();
        assert!(err.contains("degraded"), "{err}");
        // phase_count sums across sides
        let mut s = TraceSummary::new();
        s.add("client", "retry", 1, 0);
        s.add("server", "retry", 1, 0);
        assert_eq!(s.phase_count("retry"), 2);
        assert_eq!(s.phase_count("rpc"), 0);
    }

    #[test]
    fn render_includes_percentiles() {
        let mut s = TraceSummary::new();
        for _ in 0..100 {
            s.add("client", "await", 1_000_000, 0);
        }
        let table = s.render();
        assert!(table.contains("p50/p95/p99"), "{table}");
        assert!(!table.contains("-/-/-"), "{table}");
    }
}
