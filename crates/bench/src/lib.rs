//! `dpfs-bench` — regenerates every figure of the paper's evaluation (§8).
//!
//! The evaluation has four figures and no tables:
//!
//! - **Figure 11** — file-level comparison, 8 compute nodes, 4 I/O nodes,
//!   per storage class: `cargo run -p dpfs-bench --release --bin fig11`
//! - **Figure 12** — same, 16 compute nodes, 8 I/O nodes: `--bin fig12`
//! - **Figure 13** — striping-algorithm comparison (round-robin vs greedy)
//!   on half class-1 / half class-3 storage, 8/8: `--bin fig13`
//! - **Figure 14** — same, 16/16: `--bin fig14`
//!
//! `--bin figures` runs all four. Set `DPFS_BENCH_SCALE=quick` for a
//! fast smoke-scale run (CI); the default `full` scale reproduces the
//! paper's request-count ratios faithfully (scaled ~100× in wall-clock,
//! see `dpfs-server::perf`).

pub mod ablation;
pub mod figures;
pub mod report;
pub mod tracesum;

pub use figures::{file_level_figure, striping_figure, FigScale, LevelRow, StripingRow};
pub use report::{print_file_level_table, print_striping_table};
pub use tracesum::{summarize_jsonl, summarize_jsonl_requiring, TraceSummary};
