//! Figure 11: I/O bandwidth comparison of the three DPFS file levels,
//! 8 compute nodes, 4 I/O nodes, storage classes 1-3.

use dpfs_bench::{file_level_figure, print_file_level_table, FigScale};

fn main() {
    let scale = FigScale::from_env();
    let rows = file_level_figure(8, 4, scale);
    print_file_level_table(
        "Figure 11: File Level Comparisons (8 compute nodes, 4 I/O nodes) — I/O bandwidth, MB/s, (*, BLOCK) read",
        &rows,
    );
}
