//! `trace-summarize` — per-phase latency table from a JSONL trace export.
//!
//! ```text
//! DPFS_TRACE_OUT=trace.jsonl cargo run --release -p dpfs-bench --bin ablation -- --quick
//! cargo run --release -p dpfs-bench --bin trace-summarize -- trace.jsonl
//! cargo run --release -p dpfs-bench --bin trace-summarize -- \
//!     --require-phase retry trace-chaos.jsonl
//! ```
//!
//! Exits nonzero when the file is missing, empty, or holds unparseable
//! events — or, with `--require-phase NAME` (repeatable), when no span of
//! that phase was recorded. CI uses the latter to assert a chaos run
//! actually exercised the retry layer.

use dpfs_bench::summarize_jsonl_requiring;

fn usage() -> ! {
    eprintln!("usage: trace-summarize [--require-phase NAME]... <trace.jsonl>");
    std::process::exit(2);
}

fn main() {
    let mut required = Vec::new();
    let mut path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--require-phase" {
            match args.next() {
                Some(name) => required.push(name),
                None => usage(),
            }
        } else if path.replace(arg).is_some() {
            usage(); // two paths
        }
    }
    let Some(path) = path else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-summarize: {path}: {e}");
            std::process::exit(1);
        }
    };
    match summarize_jsonl_requiring(&text, &required) {
        Ok(table) => {
            println!("{path}:");
            print!("{table}");
        }
        Err(e) => {
            eprintln!("trace-summarize: {path}: {e}");
            std::process::exit(1);
        }
    }
}
