//! `trace-summarize` — per-phase latency table from a JSONL trace export.
//!
//! ```text
//! DPFS_TRACE_OUT=trace.jsonl cargo run --release -p dpfs-bench --bin ablation -- --quick
//! cargo run --release -p dpfs-bench --bin trace-summarize -- trace.jsonl
//! ```
//!
//! Exits nonzero when the file is missing, empty, or holds unparseable
//! events, so CI can assert the tracing pipeline produced real data.

use dpfs_bench::summarize_jsonl;

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace-summarize <trace.jsonl>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-summarize: {path}: {e}");
            std::process::exit(1);
        }
    };
    match summarize_jsonl(&text) {
        Ok(table) => {
            println!("{path}:");
            print!("{table}");
        }
        Err(e) => {
            eprintln!("trace-summarize: {path}: {e}");
            std::process::exit(1);
        }
    }
}
