//! Run all four evaluation figures in sequence.

use dpfs_bench::{
    file_level_figure, print_file_level_table, print_striping_table, striping_figure, FigScale,
};

fn main() {
    let scale = FigScale::from_env();
    print_file_level_table(
        "Figure 11: File Level Comparisons (8 compute nodes, 4 I/O nodes) — MB/s",
        &file_level_figure(8, 4, scale),
    );
    print_file_level_table(
        "Figure 12: File Level Comparisons (16 compute nodes, 8 I/O nodes) — MB/s",
        &file_level_figure(16, 8, scale),
    );
    print_striping_table(
        "Figure 13: Striping Algorithm Comparison (8/8, class1+class3) — MB/s",
        &striping_figure(8, 8, scale),
    );
    print_striping_table(
        "Figure 14: Striping Algorithm Comparison (16/16, class1+class3) — MB/s",
        &striping_figure(16, 16, scale),
    );
}
