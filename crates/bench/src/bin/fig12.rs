//! Figure 12: I/O bandwidth comparison of the three DPFS file levels,
//! 16 compute nodes, 8 I/O nodes, storage classes 1-3.

use dpfs_bench::{file_level_figure, print_file_level_table, FigScale};

fn main() {
    let scale = FigScale::from_env();
    let rows = file_level_figure(16, 8, scale);
    print_file_level_table(
        "Figure 12: File Level Comparisons (16 compute nodes, 8 I/O nodes) — I/O bandwidth, MB/s, (*, BLOCK) read",
        &rows,
    );
}
