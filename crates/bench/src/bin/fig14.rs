//! Figure 14: round-robin vs greedy striping, 16 compute nodes, 16 I/O
//! nodes, half class-1 / half class-3 storage.

use dpfs_bench::{print_striping_table, striping_figure, FigScale};

fn main() {
    let scale = FigScale::from_env();
    let rows = striping_figure(16, 16, scale);
    print_striping_table(
        "Figure 14: Striping Algorithm Comparison (16 compute nodes, 16 I/O nodes, half class-1 / half class-3) — MB/s",
        &rows,
    );
}
