//! Figure 13: round-robin vs greedy striping, 8 compute nodes, 8 I/O nodes,
//! half class-1 / half class-3 storage.

use dpfs_bench::{print_striping_table, striping_figure, FigScale};

fn main() {
    let scale = FigScale::from_env();
    let rows = striping_figure(8, 8, scale);
    print_striping_table(
        "Figure 13: Striping Algorithm Comparison (8 compute nodes, 8 I/O nodes, half class-1 / half class-3) — MB/s",
        &rows,
    );
}
