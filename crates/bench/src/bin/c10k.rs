//! C10K smoke gate: hold many concurrent connections against one
//! readiness-runtime I/O server and prove three things end to end —
//! every response arrives (zero drops), every byte round-trips exactly,
//! and the server's thread count stays flat while the connections pile
//! up. Exits nonzero on any violation, so CI can run the real binary.
//!
//! Usage: `c10k [--connections N]` (default 256 — the scaled-down CI
//! gate; the full integration test drives 1024).

use std::io::Write as _;
use std::net::TcpStream;
use std::process::exit;
use std::time::Instant;

use bytes::Bytes;
use dpfs_proto::{frame, Request, Response};
use dpfs_server::{IoServer, PerfModel, RuntimeMode, ServerConfig};

/// Current thread count of this process, from `/proc/self/status`.
fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

fn pattern(i: usize) -> Vec<u8> {
    (0..64u64)
        .map(|b| (b.wrapping_mul(131).wrapping_add(i as u64 * 17) % 251) as u8)
        .collect()
}

fn main() {
    let mut connections = 256usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connections" => {
                connections = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--connections needs a number");
                    exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                exit(2);
            }
        }
    }

    let root = std::env::temp_dir().join(format!("dpfs-c10k-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = IoServer::start(
        ServerConfig::new("c10k00", &root, PerfModel::unthrottled())
            .runtime(RuntimeMode::Readiness),
    )
    .expect("server start");
    let addr = server.addr();
    let budget = server.runtime_threads();
    let start = Instant::now();

    let mut conns: Vec<TcpStream> = (0..connections)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("connect");
            s.set_nodelay(true).expect("nodelay");
            s
        })
        .collect();
    let baseline = process_threads();

    // Every connection writes its own 64-byte pattern, then reads it
    // back; requests are fully pipelined before responses are drained,
    // so the server really serves them concurrently.
    let mut failures = 0usize;
    let mut dropped = 0usize;
    for phase in ["write", "read"] {
        for (i, c) in conns.iter_mut().enumerate() {
            let req = if phase == "write" {
                Request::Write {
                    subfile: "/smoke.dat".into(),
                    ranges: vec![(i as u64 * 64, Bytes::from(pattern(i)))],
                }
            } else {
                Request::Read {
                    subfile: "/smoke.dat".into(),
                    ranges: vec![(i as u64 * 64, 64)],
                }
            };
            frame::write_frame_v2(c, i as u64, &req.encode()).expect("send");
            c.flush().expect("flush");
        }
        for (i, c) in conns.iter_mut().enumerate() {
            let Ok(f) = frame::read_frame_any(c) else {
                dropped += 1;
                continue;
            };
            if f.corr_id != Some(i as u64) {
                eprintln!("conn {i}: bad corr-ID echo {:?}", f.corr_id);
                failures += 1;
                continue;
            }
            match (phase, Response::decode(f.payload)) {
                ("write", Ok(Response::Written { bytes: 64 })) => {}
                ("read", Ok(Response::Data { chunks }))
                    if chunks.len() == 1 && chunks[0][..] == pattern(i)[..] => {}
                (_, resp) => {
                    eprintln!("conn {i}: wrong {phase} response: {resp:?}");
                    failures += 1;
                }
            }
        }
    }

    let under_load = process_threads();
    let open = server.open_connections();
    println!(
        "c10k smoke: {connections} connections, {open} open at peak, \
         runtime budget {budget} threads, process threads {baseline} -> {under_load}, \
         {dropped} dropped, {failures} bad responses, {:?} elapsed",
        start.elapsed()
    );

    let mut bad = false;
    if dropped > 0 {
        eprintln!("FAIL: {dropped} connections never got a response");
        bad = true;
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} wrong responses");
        bad = true;
    }
    if open != connections {
        eprintln!("FAIL: server reports {open} open connections, expected {connections}");
        bad = true;
    }
    if under_load > baseline {
        eprintln!(
            "FAIL: thread count grew with connections ({baseline} -> {under_load}); \
             the readiness runtime must stay at its fixed budget"
        );
        bad = true;
    }
    drop(conns);
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
    if bad {
        exit(1);
    }
}
