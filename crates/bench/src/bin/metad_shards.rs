//! Metadata-plane sharding ablation: a create+stat storm from concurrent
//! clients against 1, 2 and 4 `dpfs-metad` shards, reporting ops/sec per
//! shard count. The workload is metadata-only (create registers the file
//! and its layout; stat revalidates it), so daemon throughput is the
//! bottleneck and the scaling curve isolates what partitioning the
//! namespace buys.
//!
//! Usage: `metad_shards [--quick] [--out PATH]`
//!
//! `--quick` shrinks the per-thread op count to a CI-sized smoke (the
//! result still must show every shard serving traffic). `--out` writes
//! the JSON report to a file instead of stdout; either way the last
//! stdout line is the JSON document.

use std::fmt::Write as _;
use std::process::exit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dpfs_cluster::Testbed;
use dpfs_core::{ClientOptions, Hint};

const CLIENTS: usize = 4;
const DIRS_PER_CLIENT: usize = 8;

struct Run {
    shards: usize,
    ops: u64,
    secs: f64,
    per_shard_meta_ops: Vec<u64>,
}

fn storm(shards: usize, per_thread: usize) -> Run {
    let tb = Testbed::unthrottled_with_metad_shards(2, shards).expect("testbed");
    // TTL zero: every stat is a real (generation-validated) lookup, so
    // the daemons see the full storm instead of the client TTL absorbing
    // it.
    let opts = |rank: usize| ClientOptions {
        rank,
        meta_cache_ttl: std::time::Duration::ZERO,
        ..ClientOptions::default()
    };
    // Pre-create each thread's directories outside the timed window
    // (mkdir broadcasts to every shard; the storm itself is per-shard).
    let clients: Vec<_> = (0..CLIENTS)
        .map(|t| tb.remote_client_opts(opts(t)))
        .collect();
    for (t, c) in clients.iter().enumerate() {
        for d in 0..DIRS_PER_CLIENT {
            c.mkdir(&format!("/c{t}-d{d}")).expect("mkdir");
        }
    }

    let total_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for (t, c) in clients.iter().enumerate() {
            let total_ops = &total_ops;
            s.spawn(move || {
                let mut ops = 0u64;
                for i in 0..per_thread {
                    let name = format!("/c{t}-d{}/f{i}", i % DIRS_PER_CLIENT);
                    c.create(&name, &Hint::linear(4096, 4096)).expect("create");
                    ops += 1;
                    // Stat a recent file: a validated lookup against the
                    // same shard the create just bumped.
                    let probe = format!("/c{t}-d{}/f{}", i % DIRS_PER_CLIENT, i.saturating_sub(1));
                    if c.exists(&probe).expect("stat") {
                        ops += 1;
                    } else {
                        ops += 1; // absent probes are metadata ops too
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    Run {
        shards,
        ops: total_ops.load(Ordering::Relaxed),
        secs,
        per_shard_meta_ops: tb.metad_stats_all().iter().map(|s| s.meta_ops).collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args.iter().position(|a| a == "--out").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--out needs a path");
            exit(2);
        })
    });
    let per_thread = if quick { 80 } else { 400 };

    let mut runs = Vec::new();
    for shards in [1usize, 2, 4] {
        let run = storm(shards, per_thread);
        eprintln!(
            "shards={}: {} ops in {:.2}s = {:.0} ops/sec (per-shard daemon meta_ops {:?})",
            run.shards,
            run.ops,
            run.secs,
            run.ops as f64 / run.secs,
            run.per_shard_meta_ops
        );
        runs.push(run);
    }

    // Every shard must have served real traffic in every run.
    for run in &runs {
        if run.per_shard_meta_ops.contains(&0) {
            eprintln!(
                "FAIL: shards={} left a daemon idle: {:?}",
                run.shards, run.per_shard_meta_ops
            );
            exit(1);
        }
    }

    let mut json = String::from("{\"bench\":\"metad_shards\",");
    let _ = write!(
        json,
        "\"io_servers\":2,\"clients\":{CLIENTS},\"ops_per_client\":{per_thread},\"results\":["
    );
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "{{\"shards\":{},\"ops\":{},\"secs\":{:.3},\"ops_per_sec\":{:.0},\"per_shard_meta_ops\":{:?}}}",
            run.shards,
            run.ops,
            run.secs,
            run.ops as f64 / run.secs,
            run.per_shard_meta_ops
        );
    }
    json.push_str("]}");
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write --out");
        eprintln!("wrote {path}");
    }
    println!("{json}");
}
