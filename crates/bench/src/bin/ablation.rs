//! Ablation studies: brick size, read granularity, staggered schedule,
//! I/O-node scaling, client cache. Not paper figures — these probe the
//! design choices DESIGN.md calls out.

use dpfs_bench::ablation::*;
use dpfs_bench::FigScale;

fn main() {
    let scale = FigScale::from_env();
    print_points(
        "Ablation 1: linear brick-size sweep (8 clients, 4 class-3 servers, combined)",
        &brick_size_sweep(scale),
    );
    print_points(
        "Ablation 2: read granularity on (*, BLOCK) over a linear file",
        &granularity_ablation(scale),
    );
    print_points(
        "Ablation 3: staggered schedule vs convoy (8 clients, 8 servers)",
        &stagger_ablation(scale),
    );
    print_points(
        "Ablation 4: I/O-node scaling (8 clients, multidim (*, BLOCK) read)",
        &io_node_scaling(scale),
    );
    print_points(
        "Ablation 5: client-side brick cache (hot-region re-reads)",
        &cache_ablation(scale),
    );
    print_points(
        "Ablation 6: parallel vs serial per-server dispatch (1 client, 4 class-3 servers)",
        &dispatch_ablation(scale),
    );
}
