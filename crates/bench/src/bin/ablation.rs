//! Ablation studies: brick size, read granularity, staggered schedule,
//! I/O-node scaling, client cache, dispatch mode, transport pipelining.
//! Not paper figures — these probe the design choices DESIGN.md calls out.
//!
//! `--quick` forces the small workload scale and turns the run into a smoke
//! test: the directional regression checks (cache wins, parallel dispatch
//! wins, multiplexed transport wins) are asserted and a violation exits
//! nonzero, so CI can run the real binary end to end.

use dpfs_bench::ablation::*;
use dpfs_bench::{FigScale, TraceSummary};
use dpfs_core::trace::{export_jsonl_to, ring};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        FigScale::Quick
    } else {
        FigScale::from_env()
    };
    // Scope trace export and the phase table to this run's events.
    let trace_cursor = ring().cursor();

    print_points(
        "Ablation 1: linear brick-size sweep (8 clients, 4 class-3 servers, combined)",
        &brick_size_sweep(scale),
    );
    print_points(
        "Ablation 2: read granularity on (*, BLOCK) over a linear file",
        &granularity_ablation(scale),
    );
    print_points(
        "Ablation 3: staggered schedule vs convoy (8 clients, 8 servers)",
        &stagger_ablation(scale),
    );
    print_points(
        "Ablation 4: I/O-node scaling (8 clients, multidim (*, BLOCK) read)",
        &io_node_scaling(scale),
    );
    let cache = cache_ablation(scale);
    print_points(
        "Ablation 5: client-side brick cache (hot-region re-reads)",
        &cache,
    );
    let dispatch = dispatch_ablation(scale);
    print_points(
        "Ablation 6: parallel vs serial per-server dispatch (1 client, 4 class-3 servers)",
        &dispatch,
    );
    let pipeline = pipeline_ablation(scale);
    print_points(
        "Ablation 7: transport pipelining depth (2 handles sharing per-server connections)",
        &pipeline,
    );
    let metadata = metadata_ablation(scale);
    print_ops_points(
        "Ablation 8: metadata placement on an open/stat-heavy workload",
        &metadata,
    );
    let list_io = list_io_ablation(scale);
    print_points(
        "Ablation 9: server-side list I/O vs enumerated ranges (exact-granularity read)",
        &list_io,
    );

    // Per-phase latency table from the spans the run just recorded. The
    // global ring keeps the last 65536 events, so at full scale this is
    // the tail of the run, not the whole of it.
    let events = ring().events_since(trace_cursor);
    let mut summary = TraceSummary::new();
    summary.add_events(&events);
    println!(
        "Phase latency summary ({} traced spans retained):",
        events.len()
    );
    print!("{}", summary.render());
    println!();

    if let Some(path) = std::env::var_os("DPFS_TRACE_OUT") {
        let path = std::path::PathBuf::from(path);
        match export_jsonl_to(&path, trace_cursor) {
            Ok(n) => println!("exported {n} trace events to {}", path.display()),
            Err(e) => {
                eprintln!("ablation: trace export to {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if quick {
        let mut failures = Vec::new();
        let mut check = |what: &str, ok: bool| {
            if !ok {
                failures.push(what.to_string());
            }
        };
        check(
            "client-side brick cache must beat no-cache on hot re-reads",
            cache[1].1 > cache[0].1,
        );
        check(
            "parallel per-server dispatch must beat the serial request loop",
            dispatch[0].1 > dispatch[1].1,
        );
        check(
            "multiplexed transport must beat lockstep connections (PR 1)",
            pipeline[0].1 > pipeline[1].1,
        );
        check(
            "multiplexed transport must beat serial dispatch",
            pipeline[0].1 > pipeline[2].1,
        );
        check(
            "metadata client cache must beat the uncached remote mount",
            metadata[2].1 > metadata[1].1,
        );
        check(
            "server-side list I/O must beat client-side enumeration",
            list_io[0].1 > list_io[1].1,
        );
        if failures.is_empty() {
            println!("quick smoke checks: all passed");
        } else {
            for f in &failures {
                eprintln!("ablation regression: {f}");
            }
            std::process::exit(1);
        }
    }
}
