//! `dpfs-metad` — standalone DPFS metadata daemon.
//!
//! Runs the metadata server the paper's clients query for every open,
//! stat and layout lookup (§5). It owns the catalog database — clients
//! and I/O servers never touch it directly — and serves the metadata RPCs
//! over the same framed transport as the I/O nodes.
//!
//! ```text
//! dpfs-metad --dir /var/dpfs-meta [--bind 0.0.0.0:7441] [--sync]
//!            [--name NAME] [--stats-interval SECS]
//!            [--shard ID --shards N]
//! ```
//!
//! Omitting `--dir` runs an in-memory catalog (gone at exit — useful for
//! smoke tests only). `--sync` makes commits fsync the write-ahead state.
//! `--shard ID --shards N` serves shard ID of an N-wide partitioned
//! metadata plane (clients mount all N daemons with repeated
//! `dpfs-sh --metad` flags, in shard order).
//!
//! Logging verbosity is controlled by the `DPFS_LOG` environment variable
//! (`error`, `info` — the default — or `debug`).

use std::time::Duration;

use dpfs_metad::{MetaServer, MetadConfig};
use dpfs_obs::{log_error, log_info};

struct Args {
    dir: Option<String>,
    bind: String,
    sync: bool,
    name: Option<String>,
    stats_interval: u64,
    shard_id: u32,
    shards: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: None,
        bind: "0.0.0.0:7441".to_string(),
        sync: false,
        name: None,
        stats_interval: 0,
        shard_id: 0,
        shards: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--dir" => args.dir = Some(value("--dir")?),
            "--bind" => args.bind = value("--bind")?,
            "--sync" => args.sync = true,
            "--name" => args.name = Some(value("--name")?),
            "--stats-interval" => {
                args.stats_interval = value("--stats-interval")?
                    .parse()
                    .map_err(|e| format!("bad --stats-interval: {e}"))?
            }
            "--shard" => {
                args.shard_id = value("--shard")?
                    .parse()
                    .map_err(|e| format!("bad --shard: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: dpfs-metad [--dir DIR] [--bind ADDR:PORT] [--sync] [--name NAME] \
                     [--stats-interval SECS] [--shard ID --shards N]\n\
                     omitting --dir serves an in-memory (non-persistent) catalog\n\
                     --shard/--shards serve one shard of a partitioned metadata plane\n\
                     set DPFS_LOG=error|info|debug to control log verbosity (default info)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.shards == 0 || args.shard_id >= args.shards {
        return Err(format!(
            "--shard {} out of range for --shards {}",
            args.shard_id, args.shards
        ));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            log_error!("dpfs-metad: {e}");
            std::process::exit(2);
        }
    };
    let mut config = MetadConfig::in_memory()
        .bind(&args.bind)
        .shard(args.shard_id, args.shards);
    config.sync_on_commit = args.sync;
    if let Some(name) = &args.name {
        config = config.name(name.clone());
    }
    if let Some(dir) = &args.dir {
        config = config.dir(dir);
    }
    let name = config.name.clone();

    let server = match MetaServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            log_error!("dpfs-metad: failed to start: {e}");
            std::process::exit(1);
        }
    };
    log_info!(
        "dpfs-metad `{name}` serving {} on {} (shard {}/{})",
        args.dir.as_deref().unwrap_or("an in-memory catalog"),
        server.addr(),
        args.shard_id,
        args.shards
    );
    log_info!("mount with: dpfs-sh --metad {}", server.addr());

    // Serve until killed; optionally print stats periodically.
    loop {
        std::thread::sleep(Duration::from_secs(args.stats_interval.max(60)));
        if args.stats_interval > 0 {
            let s = server.stats();
            log_info!(
                "stats: conns={} reqs={} meta_ops={} errors={} in_flight={} gen={}",
                s.connections,
                s.requests,
                s.meta_ops,
                s.errors,
                s.in_flight,
                s.generation
            );
            for (op, h) in &s.op_latency {
                log_info!("  {op}: n={} lat_us={}", h.count, h.summary_us());
            }
        }
    }
}
