//! `dpfs-metad` — the DPFS metadata daemon.
//!
//! The paper's clients reach the four metadata tables through a *database
//! server* over the network (§5). This crate is that server: it owns the
//! embedded [`Database`] (no client ever touches the database directly),
//! serves the [`MetaOp`] RPCs through the same accept-loop/worker-pool
//! core as the I/O servers ([`dpfs_server::ServeCore`]), and answers every
//! metadata reply with the current *metadata generation* so clients can
//! keep attr/layout caches coherent without a dedicated invalidation
//! channel.
//!
//! Observability mirrors the I/O servers: traced requests record
//! `decode`/`queue`/`handle`/`respond` spans into the global ring, and
//! every op lands in a per-op service-time histogram exported through the
//! `Stats` RPC as a [`MetadStatsSnapshot`].

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpfs_meta::{Database, EmbeddedMetaStore, MetaStore, ShardMap};
use dpfs_obs::{now_ns, ring, HistSnapshot, Histogram, Side, TraceEvent};
use dpfs_proto::{ErrorCode, MetaOp, MetaResult, Request, Response};
use dpfs_server::{ServeCore, Service};
use parking_lot::Mutex;

/// Record one metad-side span into the global trace ring. No-op when
/// `trace_id` is 0 (untraced request).
fn metad_event(
    trace_id: u64,
    phase: &'static str,
    kind: &'static str,
    server: &str,
    start_ns: u64,
    dur_ns: u64,
) {
    if trace_id == 0 {
        return;
    }
    ring().record(TraceEvent {
        seq: 0,
        trace_id,
        side: Side::Server,
        phase,
        kind,
        server: server.to_string(),
        start_ns,
        dur_ns,
        bytes: 0,
    });
}

/// Request-path counters plus per-op service-time histograms. Shared by
/// connection threads and per-connection workers; everything is atomic or
/// behind a short registry lock (the histograms themselves record
/// lock-free).
#[derive(Default)]
pub struct MetadStats {
    /// Total requests handled (all kinds, including Ping/Stats).
    pub requests: AtomicU64,
    /// Metadata operations handled (`Request::Meta` only).
    pub meta_ops: AtomicU64,
    /// Metadata operations that returned an error result.
    pub errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests currently being handled.
    pub in_flight: AtomicU64,
    /// Per-op service-time histograms, keyed by [`MetaOp::op_str`] label.
    /// Lazily populated; the lock only guards the registry, not recording.
    hists: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MetadStats {
    /// The histogram for one op label, creating it on first use.
    fn hist_for(&self, op: &'static str) -> Arc<Histogram> {
        self.hists.lock().entry(op).or_default().clone()
    }

    /// Snapshot every counter and histogram.
    pub fn snapshot(&self, generation: u64, shard_id: u64, shards: u64) -> MetadStatsSnapshot {
        let op_latency = self
            .hists
            .lock()
            .iter()
            .map(|(op, h)| (op.to_string(), h.snapshot()))
            .collect();
        MetadStatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            meta_ops: self.meta_ops.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            generation,
            shard_id,
            shards,
            op_latency,
        }
    }
}

/// Point-in-time copy of [`MetadStats`], carried as the metadata daemon's
/// `Stats` RPC payload. Its wire format is distinct from the I/O server's
/// `StatsSnapshot` (different leading version byte), so a stats client can
/// tell which kind of server it asked.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetadStatsSnapshot {
    pub requests: u64,
    pub meta_ops: u64,
    pub errors: u64,
    pub connections: u64,
    pub in_flight: u64,
    /// Metadata generation at snapshot time.
    pub generation: u64,
    /// Which shard this daemon serves (0 for a single-shard deployment).
    pub shard_id: u64,
    /// Total shard count in the daemon's shard-map view (>= 1).
    pub shards: u64,
    /// Per-op service-time histograms, sorted by op label.
    pub op_latency: Vec<(String, HistSnapshot)>,
}

/// Version byte leading a metad stats blob. The I/O server's snapshots
/// start at 1 and count up slowly; metad claims a disjoint range so the
/// two payloads can never be confused.
const METAD_SNAPSHOT_VERSION: u8 = 0x4d; // 'M'

impl MetadStatsSnapshot {
    /// Serialize to the versioned `Stats` payload blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            1 + 8 * 8
                + 4
                + self
                    .op_latency
                    .iter()
                    .map(|(op, _)| 4 + op.len() + HistSnapshot::ENCODED_LEN)
                    .sum::<usize>(),
        );
        out.push(METAD_SNAPSHOT_VERSION);
        for v in [
            self.requests,
            self.meta_ops,
            self.errors,
            self.connections,
            self.in_flight,
            self.generation,
            self.shard_id,
            self.shards,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.op_latency.len() as u32).to_le_bytes());
        for (op, hist) in &self.op_latency {
            out.extend_from_slice(&(op.len() as u32).to_le_bytes());
            out.extend_from_slice(op.as_bytes());
            hist.encode_into(&mut out);
        }
        out
    }

    /// Decode a blob produced by [`MetadStatsSnapshot::encode`]. Returns
    /// `None` on truncation or a foreign version byte (e.g. an I/O
    /// server's snapshot).
    pub fn decode(buf: &[u8]) -> Option<MetadStatsSnapshot> {
        let (&version, mut rest) = buf.split_first()?;
        if version != METAD_SNAPSHOT_VERSION {
            return None;
        }
        let read_u64 = |rest: &mut &[u8]| -> Option<u64> {
            let (head, tail) = rest.split_at_checked(8)?;
            *rest = tail;
            Some(u64::from_le_bytes(head.try_into().ok()?))
        };
        let requests = read_u64(&mut rest)?;
        let meta_ops = read_u64(&mut rest)?;
        let errors = read_u64(&mut rest)?;
        let connections = read_u64(&mut rest)?;
        let in_flight = read_u64(&mut rest)?;
        let generation = read_u64(&mut rest)?;
        let shard_id = read_u64(&mut rest)?;
        let shards = read_u64(&mut rest)?;
        let (head, mut tail) = rest.split_at_checked(4)?;
        let n = u32::from_le_bytes(head.try_into().ok()?) as usize;
        let mut op_latency = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            let (head, rest2) = tail.split_at_checked(4)?;
            let len = u32::from_le_bytes(head.try_into().ok()?) as usize;
            let (name, rest3) = rest2.split_at_checked(len)?;
            let op = String::from_utf8(name.to_vec()).ok()?;
            let (hist, used) = HistSnapshot::decode_from(rest3)?;
            tail = &rest3[used..];
            op_latency.push((op, hist));
        }
        Some(MetadStatsSnapshot {
            requests,
            meta_ops,
            errors,
            connections,
            in_flight,
            generation,
            shard_id,
            shards,
            op_latency,
        })
    }
}

/// The metadata request handler: [`MetaOp`] in, [`MetaResult`] +
/// generation out. Owns the [`EmbeddedMetaStore`] (and through it the
/// database); every connection worker dispatches through one shared
/// `MetaHandler`.
pub struct MetaHandler {
    name: String,
    store: EmbeddedMetaStore,
    stats: MetadStats,
    /// Which shard of the namespace this daemon serves.
    shard_id: u32,
    /// The daemon's shard-map view; replies to `GetShardMap` and lets
    /// clients cross-check their mount topology.
    shard_map: ShardMap,
}

impl MetaHandler {
    /// Build a single-shard handler over a database, creating the DPFS
    /// tables and the generation table if missing. `name` labels trace
    /// events.
    pub fn new(name: impl Into<String>, db: Arc<Database>) -> dpfs_meta::Result<MetaHandler> {
        Self::new_sharded(name, db, 0, 1)
    }

    /// Build a handler serving shard `shard_id` of a `shards`-wide
    /// metadata plane. The daemon trusts client routing — it serves
    /// whatever namespace slice clients send it — but stamps every reply
    /// with its shard id so a misrouted client fails loudly.
    pub fn new_sharded(
        name: impl Into<String>,
        db: Arc<Database>,
        shard_id: u32,
        shards: u32,
    ) -> dpfs_meta::Result<MetaHandler> {
        Ok(MetaHandler {
            name: name.into(),
            store: EmbeddedMetaStore::new(db)?,
            stats: MetadStats::default(),
            shard_id,
            shard_map: ShardMap::new(shards),
        })
    }

    /// The daemon name trace events are stamped with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which shard this daemon serves.
    pub fn shard_id(&self) -> u32 {
        self.shard_id
    }

    /// The daemon's shard-map view.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// The backing store (in-process tests and the testbed reach through
    /// to seed the catalog).
    pub fn store(&self) -> &EmbeddedMetaStore {
        &self.store
    }

    /// The request-path counters and histograms.
    pub fn stats(&self) -> &MetadStats {
        &self.stats
    }

    /// A stats snapshot stamped with the current generation and shard.
    pub fn stats_snapshot(&self) -> MetadStatsSnapshot {
        let generation = self.store.generation().unwrap_or(0);
        self.stats.snapshot(
            generation,
            u64::from(self.shard_id),
            u64::from(self.shard_map.shards),
        )
    }

    /// Apply one metadata op against the store. Pure dispatch: every
    /// `MetaStore` method maps to exactly one `MetaOp` variant.
    fn apply(&self, op: MetaOp) -> MetaResult {
        use MetaOp as Op;
        use MetaResult as R;
        let s = &self.store;
        let result = match op {
            Op::RegisterServer { info } => s.register_server(&info).map(|()| R::Unit),
            Op::ListServers => s.list_servers().map(R::Servers),
            Op::GetServer { name } => s.get_server(&name).map(R::MaybeServer),
            Op::RemoveServer { name } => s.remove_server(&name).map(R::Bool),
            Op::CreateFile { attr, dist } => s.create_file(&attr, &dist).map(|()| R::Unit),
            Op::DeleteFile { filename } => s.delete_file(&filename).map(R::Distributions),
            Op::RenameFile { from, to } => s.rename_file(&from, &to).map(|()| R::Unit),
            Op::GetFileAttr { filename } => s.get_file_attr(&filename).map(R::MaybeAttr),
            Op::SetFileSize { filename, size } => {
                s.set_file_size(&filename, size).map(|()| R::Unit)
            }
            Op::SetFilePermission {
                filename,
                permission,
            } => s
                .set_file_permission(&filename, permission)
                .map(|()| R::Unit),
            Op::SetFileOwner { filename, owner } => {
                s.set_file_owner(&filename, &owner).map(|()| R::Unit)
            }
            Op::GetDistribution { filename } => s.get_distribution(&filename).map(R::Distributions),
            Op::UpdateDistribution { filename, dist } => {
                s.update_distribution(&filename, &dist).map(|()| R::Unit)
            }
            Op::Mkdir { path } => s.mkdir(&path).map(|()| R::Unit),
            Op::Rmdir { path } => s.rmdir(&path).map(|()| R::Unit),
            Op::GetDir { path } => s.get_dir(&path).map(R::MaybeDir),
            Op::SetTag {
                filename,
                tag,
                value,
            } => s.set_tag(&filename, &tag, &value).map(|()| R::Unit),
            Op::GetTag { filename, tag } => s.get_tag(&filename, &tag).map(R::MaybeString),
            Op::ListTags { filename } => s.list_tags(&filename).map(R::Tags),
            Op::RemoveTag { filename, tag } => s.remove_tag(&filename, &tag).map(R::Bool),
            Op::FindByTag { tag, pattern } => s.find_by_tag(&tag, &pattern).map(R::TagHits),
            Op::ServerBrickCounts => s.server_brick_counts().map(R::BrickCounts),
            Op::Generation => Ok(R::Unit), // gen rides in the envelope
            Op::GetShardMap => Ok(R::ShardMap {
                version: self.shard_map.version,
                shards: self.shard_map.shards,
            }),
            Op::RenamePrepare { from, to } => {
                s.rename_prepare(&from, &to)
                    .map(|(intent, attr, dist, tags)| R::RenamePrepared {
                        intent,
                        attr,
                        dist,
                        tags,
                    })
            }
            Op::RenameCommit {
                intent,
                attr,
                dist,
                tags,
            } => s
                .rename_commit_dest(intent, &attr, &dist, &tags)
                .map(|()| R::Unit),
            Op::RenameFinish { intent } => s.rename_finish(intent).map(|()| R::Unit),
            Op::RenameAbort { intent } => s.rename_abort(intent).map(R::Bool),
            Op::ListRenameIntents => s
                .list_rename_intents()
                .map(|xs| R::Intents(xs.into_iter().map(|i| (i.id, i.src, i.dst)).collect())),
        };
        result.unwrap_or_else(|e| MetaResult::from_err(&e))
    }

    /// Handle one request (untraced); see [`MetaHandler::handle_traced`].
    pub fn handle(&self, req: Request) -> Response {
        self.handle_traced(req, 0)
    }

    /// Handle one request stamped with `trace_id` (0 = untraced): records
    /// a `handle` span and the per-op service-time histogram sample, and
    /// answers every metadata op with a generation stamp. Mutations stamp
    /// *after* applying — the bump has committed by the time the store
    /// call returns, so an acknowledged mutation is always reflected in
    /// the generation its own reply carries. Reads stamp *before* — a
    /// concurrent mutation committing between the stamp and the catalog
    /// read makes the stamp conservatively old (clients refetch once),
    /// never newer than the data (which would let a cache serve a stale
    /// layout as current).
    pub fn handle_traced(&self, req: Request, trace_id: u64) -> Response {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let resp = match req {
            Request::Ping | Request::Shutdown => Response::Pong,
            Request::Stats => Response::Stats {
                payload: bytes::Bytes::from(self.stats_snapshot().encode()),
            },
            Request::Meta { op } => {
                self.stats.meta_ops.fetch_add(1, Ordering::Relaxed);
                let kind = op.op_str();
                let is_mutation = op.is_mutation();
                let pre_gen = if is_mutation {
                    0
                } else {
                    self.store.generation().unwrap_or(0)
                };
                let t0 = now_ns();
                let result = self.apply(op);
                let gen = if is_mutation {
                    self.store.generation().unwrap_or(0)
                } else {
                    pre_gen
                };
                let dur = now_ns().saturating_sub(t0);
                self.stats.hist_for(kind).record(dur);
                metad_event(trace_id, "handle", kind, &self.name, t0, dur);
                dpfs_obs::slowlog().note(
                    dpfs_obs::Side::Server,
                    kind,
                    &self.name,
                    trace_id,
                    dur,
                    0,
                );
                if matches!(result, MetaResult::Err { .. }) {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                }
                Response::Meta {
                    shard: self.shard_id,
                    gen,
                    result,
                }
            }
            // I/O requests belong to the I/O servers; a client that dials
            // the metadata port gets a clean protocol error.
            other => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("{} sent to the metadata server", other.kind_str()),
                }
            }
        };
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        resp
    }
}

impl Service for MetaHandler {
    fn name(&self) -> &str {
        MetaHandler::name(self)
    }

    fn handle_traced(&self, req: Request, trace_id: u64) -> Response {
        MetaHandler::handle_traced(self, req, trace_id)
    }

    fn note_connection(&self) {
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
    }
}

/// Configuration for one metadata daemon.
#[derive(Debug, Clone)]
pub struct MetadConfig {
    /// Daemon name stamped on trace events (`metad` by default).
    pub name: String,
    /// Database directory; `None` runs fully in memory (tests).
    pub dir: Option<PathBuf>,
    /// Whether on-disk databases fsync on commit.
    pub sync_on_commit: bool,
    /// Listen address; `127.0.0.1:0` (ephemeral localhost port) by default.
    pub bind: String,
    /// Which shard of the namespace this daemon serves (default 0).
    pub shard_id: u32,
    /// Total shard count in the metadata plane (default 1).
    pub shards: u32,
}

impl Default for MetadConfig {
    fn default() -> Self {
        MetadConfig {
            name: "metad".to_string(),
            dir: None,
            sync_on_commit: false,
            bind: "127.0.0.1:0".to_string(),
            shard_id: 0,
            shards: 1,
        }
    }
}

impl MetadConfig {
    /// In-memory daemon on an ephemeral port (tests, testbeds).
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Persist the catalog under `dir`.
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Set an explicit listen address.
    pub fn bind(mut self, addr: &str) -> Self {
        self.bind = addr.to_string();
        self
    }

    /// Set the trace-event name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Serve shard `shard_id` of a `shards`-wide metadata plane.
    pub fn shard(mut self, shard_id: u32, shards: u32) -> Self {
        self.shard_id = shard_id;
        self.shards = shards.max(1);
        self
    }
}

/// A running metadata daemon. Dropping the handle shuts it down.
pub struct MetaServer {
    handler: Arc<MetaHandler>,
    core: ServeCore,
}

impl MetaServer {
    /// Open (or create) the database and start serving.
    pub fn start(config: MetadConfig) -> io::Result<MetaServer> {
        let db = match &config.dir {
            Some(dir) => Database::open_with_sync(dir, config.sync_on_commit)
                .map_err(|e| io::Error::other(e.to_string()))?,
            None => Database::in_memory(),
        };
        Self::start_with_db(config, Arc::new(db))
    }

    /// Start serving over an already-open database (the daemon still owns
    /// it: nothing else should touch `db` once serving starts).
    pub fn start_with_db(config: MetadConfig, db: Arc<Database>) -> io::Result<MetaServer> {
        let handler = Arc::new(
            MetaHandler::new_sharded(&config.name, db, config.shard_id, config.shards)
                .map_err(|e| io::Error::other(e.to_string()))?,
        );
        let core = ServeCore::start(&config.bind, handler.clone())?;
        Ok(MetaServer { handler, core })
    }

    /// The daemon's listen address.
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// Direct access to the handler (in-process tests & testbed seeding).
    pub fn handler(&self) -> &Arc<MetaHandler> {
        &self.handler
    }

    /// Statistics snapshot stamped with the current generation.
    pub fn stats(&self) -> MetadStatsSnapshot {
        self.handler.stats_snapshot()
    }

    /// Number of currently open client connections.
    pub fn open_connections(&self) -> usize {
        self.core.open_connections()
    }

    /// Stop accepting, sever live connections, and join every server
    /// thread; the port is immediately rebindable afterwards.
    pub fn stop(&mut self) {
        self.core.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpfs_meta::{Distribution, FileAttrRow, MetaError, ServerInfo};
    use dpfs_proto::frame;
    use std::net::TcpStream;

    fn handler() -> MetaHandler {
        MetaHandler::new("metad-test", Arc::new(Database::in_memory())).unwrap()
    }

    fn attr(name: &str) -> FileAttrRow {
        FileAttrRow {
            filename: name.to_string(),
            owner: "t".into(),
            permission: 0o644,
            size: 0,
            filelevel: "linear".into(),
            dims: 0,
            dimsize: vec![],
            stripe_dims: vec![],
            stripe_size: 65536,
            pattern: String::new(),
            placement: "round_robin".into(),
            redundancy: String::new(),
        }
    }

    fn meta(h: &MetaHandler, op: MetaOp) -> (u64, MetaResult) {
        match h.handle(Request::Meta { op }) {
            Response::Meta { gen, result, .. } => (gen, result),
            other => panic!("expected Meta response, got {other:?}"),
        }
    }

    #[test]
    fn full_surface_dispatches() {
        let h = handler();
        let (_, r) = meta(
            &h,
            MetaOp::RegisterServer {
                info: ServerInfo {
                    name: "s0".into(),
                    capacity: 1 << 30,
                    performance: 1,
                },
            },
        );
        assert_eq!(r, MetaResult::Unit);
        let (_, r) = meta(&h, MetaOp::ListServers);
        assert!(matches!(r, MetaResult::Servers(ref xs) if xs.len() == 1));
        let (_, r) = meta(&h, MetaOp::Mkdir { path: "/d".into() });
        assert_eq!(r, MetaResult::Unit);
        let (_, r) = meta(
            &h,
            MetaOp::CreateFile {
                attr: attr("/d/f"),
                dist: vec![Distribution {
                    server: "s0".into(),
                    filename: "/d/f".into(),
                    bricklist: vec![0, 1, 2],
                }],
            },
        );
        assert_eq!(r, MetaResult::Unit);
        let (_, r) = meta(
            &h,
            MetaOp::GetFileAttr {
                filename: "/d/f".into(),
            },
        );
        assert!(matches!(r, MetaResult::MaybeAttr(Some(_))));
        let (_, r) = meta(
            &h,
            MetaOp::SetTag {
                filename: "/d/f".into(),
                tag: "k".into(),
                value: "v".into(),
            },
        );
        assert_eq!(r, MetaResult::Unit);
        let (_, r) = meta(
            &h,
            MetaOp::FindByTag {
                tag: "k".into(),
                pattern: "v".into(),
            },
        );
        assert!(matches!(r, MetaResult::TagHits(ref xs) if xs.len() == 1));
        let (_, r) = meta(&h, MetaOp::ServerBrickCounts);
        assert_eq!(r, MetaResult::BrickCounts(vec![("s0".into(), 3)]));
        let (_, r) = meta(
            &h,
            MetaOp::RenameFile {
                from: "/d/f".into(),
                to: "/d/g".into(),
            },
        );
        assert_eq!(r, MetaResult::Unit);
        let (_, r) = meta(
            &h,
            MetaOp::DeleteFile {
                filename: "/d/g".into(),
            },
        );
        assert!(matches!(r, MetaResult::Distributions(ref ds) if ds.len() == 1));
    }

    #[test]
    fn replies_carry_a_moving_generation() {
        let h = handler();
        let (g0, _) = meta(&h, MetaOp::Generation);
        let (g1, r) = meta(&h, MetaOp::Mkdir { path: "/d".into() });
        assert_eq!(r, MetaResult::Unit);
        assert!(g1 > g0, "mutation reply must carry the bumped generation");
        let (g2, _) = meta(&h, MetaOp::GetDir { path: "/d".into() });
        assert_eq!(g2, g1, "reads leave the generation alone");
    }

    /// The stamp a read reply carries must never be newer than the data
    /// it describes: if a reader's generation is >= a mutation's reply
    /// generation, the reader must observe that mutation. (A mutation
    /// committing between a read's catalog fetch and its generation stamp
    /// used to produce exactly that violation, letting client caches
    /// validate stale attrs/layouts as current.)
    #[test]
    fn read_replies_never_stamp_stale_data_as_current() {
        let h = handler();
        let (_, r) = meta(
            &h,
            MetaOp::CreateFile {
                attr: attr("/f"),
                dist: vec![],
            },
        );
        assert_eq!(r, MetaResult::Unit);
        let done = std::sync::atomic::AtomicBool::new(false);
        let (muts, reads) = std::thread::scope(|s| {
            let mutator = s.spawn(|| {
                let mut muts = Vec::new();
                for size in 1..=400i64 {
                    let (gen, r) = meta(
                        &h,
                        MetaOp::SetFileSize {
                            filename: "/f".into(),
                            size,
                        },
                    );
                    assert_eq!(r, MetaResult::Unit);
                    muts.push((gen, size));
                }
                done.store(true, Ordering::Relaxed);
                muts
            });
            let reader = s.spawn(|| {
                let mut reads = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    let (gen, r) = meta(
                        &h,
                        MetaOp::GetFileAttr {
                            filename: "/f".into(),
                        },
                    );
                    let MetaResult::MaybeAttr(Some(a)) = r else {
                        panic!("expected attr, got {r:?}");
                    };
                    reads.push((gen, a.size));
                }
                reads
            });
            (mutator.join().unwrap(), reader.join().unwrap())
        });
        // Mutation reply gens are strictly increasing alongside sizes.
        for (read_gen, read_size) in reads {
            let newest_committed = muts
                .partition_point(|&(mut_gen, _)| mut_gen <= read_gen)
                .checked_sub(1)
                .map(|i| muts[i].1)
                .unwrap_or(0);
            assert!(
                read_size >= newest_committed,
                "reply stamped gen {read_gen} carries size {read_size}, \
                 but a mutation to size {newest_committed} committed at or \
                 before that generation"
            );
        }
    }

    #[test]
    fn errors_travel_as_results_not_protocol_errors() {
        let h = handler();
        let (_, r) = meta(&h, MetaOp::Mkdir { path: "/d".into() });
        assert_eq!(r, MetaResult::Unit);
        let (_, r) = meta(&h, MetaOp::Mkdir { path: "/d".into() });
        let MetaResult::Err { code, message } = r else {
            panic!("duplicate mkdir must fail, got {r:?}");
        };
        assert!(matches!(
            MetaError::from_wire(code, message),
            MetaError::DuplicateKey(_)
        ));
        assert_eq!(h.stats().errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn io_requests_are_rejected() {
        let h = handler();
        let resp = h.handle(Request::Read {
            subfile: "/f".into(),
            ranges: vec![(0, 8)],
        });
        match resp {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::BadRequest);
                assert!(message.contains("metadata server"), "{message}");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn per_op_histograms_and_snapshot_round_trip() {
        let h = handler();
        meta(&h, MetaOp::Mkdir { path: "/d".into() });
        meta(&h, MetaOp::GetDir { path: "/d".into() });
        meta(&h, MetaOp::GetDir { path: "/d".into() });
        let resp = h.handle(Request::Stats);
        let Response::Stats { payload } = resp else {
            panic!("expected Stats response, got {resp:?}");
        };
        let snap = MetadStatsSnapshot::decode(&payload).unwrap();
        assert_eq!(snap.meta_ops, 3);
        assert!(snap.generation >= 2);
        let get_dir = snap
            .op_latency
            .iter()
            .find(|(op, _)| op == "meta.get_dir")
            .expect("meta.get_dir histogram");
        assert_eq!(get_dir.1.count, 2);
        let mkdir = snap
            .op_latency
            .iter()
            .find(|(op, _)| op == "meta.mkdir")
            .expect("meta.mkdir histogram");
        assert_eq!(mkdir.1.count, 1);
        // A foreign blob (I/O server snapshot starts with a small version
        // byte) is rejected, not misparsed.
        assert!(MetadStatsSnapshot::decode(&[1, 0, 0]).is_none());
        assert!(MetadStatsSnapshot::decode(&[]).is_none());
    }

    #[test]
    fn sharded_handler_stamps_shard_and_serves_the_map() {
        let h = MetaHandler::new_sharded("metad1", Arc::new(Database::in_memory()), 1, 4).unwrap();
        let resp = h.handle(Request::Meta {
            op: MetaOp::GetShardMap,
        });
        let Response::Meta {
            shard,
            result: MetaResult::ShardMap { version, shards },
            ..
        } = resp
        else {
            panic!("expected shard map, got {resp:?}");
        };
        assert_eq!(shard, 1);
        assert_eq!(version, 1);
        assert_eq!(shards, 4);
        let snap = h.stats_snapshot();
        assert_eq!((snap.shard_id, snap.shards), (1, 4));
        // and the snapshot survives its own wire format
        let back = MetadStatsSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!((back.shard_id, back.shards), (1, 4));
        // the default constructor stays shard 0-of-1
        let h0 = handler();
        let resp = h0.handle(Request::Meta {
            op: MetaOp::Generation,
        });
        assert!(matches!(resp, Response::Meta { shard: 0, .. }));
    }

    #[test]
    fn rename_two_phase_ops_dispatch_over_the_handler() {
        // Source and destination shards as two independent handlers.
        let src = MetaHandler::new_sharded("m0", Arc::new(Database::in_memory()), 0, 2).unwrap();
        let dst = MetaHandler::new_sharded("m1", Arc::new(Database::in_memory()), 1, 2).unwrap();
        for h in [&src, &dst] {
            let (_, r) = meta(h, MetaOp::Mkdir { path: "/d".into() });
            assert_eq!(r, MetaResult::Unit);
        }
        let (_, r) = meta(
            &src,
            MetaOp::CreateFile {
                attr: attr("/d/f"),
                dist: vec![],
            },
        );
        assert_eq!(r, MetaResult::Unit);
        let (g0, _) = meta(&src, MetaOp::Generation);
        let (g1, r) = meta(
            &src,
            MetaOp::RenamePrepare {
                from: "/d/f".into(),
                to: "/d/g".into(),
            },
        );
        let MetaResult::RenamePrepared {
            intent, attr: a, ..
        } = r
        else {
            panic!("expected RenamePrepared, got {r:?}");
        };
        assert!(g1 > g0, "prepare is a mutation and must bump the gen");
        let mut moved = a;
        moved.filename = "/d/g".into();
        let (_, r) = meta(
            &dst,
            MetaOp::RenameCommit {
                intent,
                attr: moved,
                dist: vec![],
                tags: vec![],
            },
        );
        assert_eq!(r, MetaResult::Unit);
        let (_, r) = meta(&src, MetaOp::ListRenameIntents);
        assert_eq!(
            r,
            MetaResult::Intents(vec![(intent, "/d/f".into(), "/d/g".into())])
        );
        let (_, r) = meta(&src, MetaOp::RenameFinish { intent });
        assert_eq!(r, MetaResult::Unit);
        let (_, r) = meta(&src, MetaOp::ListRenameIntents);
        assert_eq!(r, MetaResult::Intents(vec![]));
        let (_, r) = meta(
            &dst,
            MetaOp::GetFileAttr {
                filename: "/d/g".into(),
            },
        );
        assert!(matches!(r, MetaResult::MaybeAttr(Some(_))));
        let (_, r) = meta(
            &src,
            MetaOp::GetFileAttr {
                filename: "/d/f".into(),
            },
        );
        assert!(matches!(r, MetaResult::MaybeAttr(None)));
    }

    #[test]
    fn traced_meta_ops_record_handle_events() {
        let h = handler();
        let trace_id = dpfs_obs::next_trace_id();
        let cursor = ring().cursor();
        h.handle_traced(
            Request::Meta {
                op: MetaOp::Mkdir { path: "/t".into() },
            },
            trace_id,
        );
        let events: Vec<_> = ring()
            .events_since(cursor)
            .into_iter()
            .filter(|e| e.trace_id == trace_id)
            .collect();
        assert!(
            events
                .iter()
                .any(|e| e.phase == "handle" && e.kind == "meta.mkdir" && e.server == "metad-test"),
            "missing metad handle event in {events:?}"
        );
    }

    #[test]
    fn tcp_round_trip_via_serve_core() {
        let mut server = MetaServer::start(MetadConfig::in_memory()).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let rpc = |c: &mut TcpStream, req: Request| -> Response {
            frame::write_frame(c, &req.encode()).unwrap();
            Response::decode(frame::read_frame(c).unwrap()).unwrap()
        };
        assert_eq!(rpc(&mut c, Request::Ping), Response::Pong);
        let resp = rpc(
            &mut c,
            Request::Meta {
                op: MetaOp::Mkdir {
                    path: "/net".into(),
                },
            },
        );
        let Response::Meta { gen, result, .. } = resp else {
            panic!("expected Meta response, got {resp:?}");
        };
        assert_eq!(result, MetaResult::Unit);
        assert!(gen >= 2);
        let resp = rpc(
            &mut c,
            Request::Meta {
                op: MetaOp::GetDir {
                    path: "/net".into(),
                },
            },
        );
        match resp {
            Response::Meta {
                result: MetaResult::MaybeDir(Some(d)),
                ..
            } => assert_eq!(d.main_dir, "/net"),
            other => panic!("expected dir, got {other:?}"),
        }
        drop(c);
        server.stop();
    }

    #[test]
    fn persistent_metad_survives_restart() {
        let dir = std::env::temp_dir().join(format!(
            "dpfs-metad-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = MetadConfig::in_memory().dir(&dir);
        let mut server = MetaServer::start(config.clone()).unwrap();
        server.handler().store().mkdir("/kept").unwrap();
        let gen_before = server.handler().store().generation().unwrap();
        server.stop();
        drop(server);
        let server = MetaServer::start(config).unwrap();
        assert!(server.handler().store().get_dir("/kept").unwrap().is_some());
        assert!(server.handler().store().generation().unwrap() >= gen_before);
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
