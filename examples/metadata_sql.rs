//! The database side of DPFS (paper §5): all file-system metadata lives in
//! four SQL tables, and "the database access interface is standard SQL."
//! This example creates files through the DPFS API and then inspects —
//! and queries — the catalog with raw SQL, exactly as an administrator
//! would against the paper's POSTGRES instance.
//!
//! Run with: `cargo run --example metadata_sql`

use dpfs::cluster::Testbed;
use dpfs::core::{Hint, HpfPattern, Placement, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let testbed = Testbed::unthrottled(4)?;
    let client = testbed.client(0, true);

    // Make some files of each level.
    client.mkdir("/home")?;
    client.mkdir("/home/xhshen")?;
    client.create("/home/xhshen/dpfs.test", &Hint::linear(65536, 2_097_152))?;
    client.create(
        "/home/xhshen/matrix",
        &Hint::multidim(
            Shape::new(vec![1024, 1024])?,
            Shape::new(vec![256, 256])?,
            4,
        ),
    )?;
    client.create(
        "/home/xhshen/ckpt",
        &Hint::array(
            Shape::new(vec![512, 512])?,
            HpfPattern::block_block(2, 2),
            8,
        )
        .with_placement(Placement::Greedy),
    )?;

    let db = client.catalog().expect("embedded mount").db();

    // The four tables of Figure 10, via standard SQL.
    println!("== DPFS-SERVER ==");
    let rs = db.execute(
        "SELECT server_name, capacity, performance FROM dpfs_server ORDER BY server_name",
    )?;
    for row in &rs.rows {
        println!("  {row:?}");
    }

    println!("\n== DPFS-FILE-ATTR (files over 1 MB, largest first) ==");
    let rs = db.execute(
        "SELECT filename, size, filelevel FROM dpfs_file_attr WHERE size > 1000000 ORDER BY size DESC",
    )?;
    for row in &rs.rows {
        println!("  {row:?}");
    }

    println!("\n== DPFS-FILE-DISTRIBUTION: who stores brick 0 of each file? ==");
    let rs = db.execute(
        "SELECT filename, server FROM dpfs_file_distribution WHERE contains(bricklist, 0) ORDER BY filename",
    )?;
    for row in &rs.rows {
        println!("  {row:?}");
    }

    println!("\n== DPFS-DIRECTORY ==");
    let rs = db.execute("SELECT main_dir, files FROM dpfs_directory ORDER BY main_dir")?;
    for row in &rs.rows {
        println!("  {row:?}");
    }

    println!("\n== aggregates: total bytes and file count under /home/xhshen ==");
    let rs = db.execute(
        "SELECT COUNT(*), SUM(size) FROM dpfs_file_attr WHERE filename LIKE '/home/xhshen/%'",
    )?;
    println!("  files={}, bytes={}", rs.rows[0][0], rs.rows[0][1]);

    // Transactions guard multi-table consistency (the paper's §5 argument):
    // a failed transaction leaves nothing behind.
    let result: Result<(), dpfs::meta::MetaError> = db.transaction(|txn| {
        txn.execute(
            "UPDATE dpfs_file_attr SET owner = 'nobody' WHERE filename = '/home/xhshen/dpfs.test'",
        )?;
        // ... simulated failure before the second statement commits
        Err(dpfs::meta::MetaError::Txn("simulated crash".into()))
    });
    assert!(result.is_err());
    let rs =
        db.execute("SELECT owner FROM dpfs_file_attr WHERE filename = '/home/xhshen/dpfs.test'")?;
    println!(
        "\nafter rolled-back transaction, owner is still {:?}",
        rs.rows[0][0]
    );
    Ok(())
}
