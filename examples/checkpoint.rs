//! Checkpoint/restart with array-level striping (paper §3.3): "many
//! large-scale scientific applications periodically dump check-pointing
//! data. Each processor writes the data it holds to storage and simply
//! reads it back later when the application resumes."
//!
//! Four workers hold a `(BLOCK, BLOCK)`-distributed 512×512 grid of f32
//! cells. Each dumps its chunk as one brick = one request; after a
//! simulated crash, fresh workers restore their chunks and the simulation
//! state matches exactly.
//!
//! Run with: `cargo run --example checkpoint`

use dpfs::cluster::{run_clients, Testbed};
use dpfs::core::{Granularity, Hint, HpfPattern, Shape};

const N: u64 = 512;
const GRID: u64 = 2; // 2x2 processor grid

/// Worker `rank`'s deterministic simulation state.
fn state_of(rank: usize, cells: u64) -> Vec<u8> {
    (0..cells * 4)
        .map(|i| ((i as usize * 31 + rank * 97) % 251) as u8)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let testbed = Testbed::unthrottled(4)?;
    let nworkers = (GRID * GRID) as usize;

    // Create the checkpoint file: array level, (BLOCK, BLOCK) over 2x2.
    let client = testbed.client(0, true);
    client.mkdir("/ckpt")?;
    let hint = Hint::array(
        Shape::new(vec![N, N])?,
        HpfPattern::block_block(GRID, GRID),
        4, // f32 cells
    );
    client.create("/ckpt/step_000042", &hint)?;

    // --- dump phase: each worker writes its own chunk ---
    let bw = run_clients(&testbed, nworkers, true, Granularity::Brick, |rank, c| {
        let mut f = c.open("/ckpt/step_000042").unwrap();
        let chunk = f.chunk_region(rank as u64).unwrap();
        let data = state_of(rank, chunk.volume());
        f.write_chunk(rank as u64, &data).unwrap();
        let reqs = f.stats().requests;
        assert_eq!(reqs, 1, "one chunk = one brick = one request");
        data.len() as u64
    });
    println!(
        "checkpoint dumped: {} bytes from {} workers in {:?}",
        bw.useful_bytes, nworkers, bw.elapsed
    );

    // --- crash & restart: fresh clients read their chunks back ---
    let bw = run_clients(&testbed, nworkers, true, Granularity::Brick, |rank, c| {
        let mut f = c.open("/ckpt/step_000042").unwrap();
        let data = f.read_chunk(rank as u64).unwrap();
        let chunk = f.chunk_region(rank as u64).unwrap();
        assert_eq!(
            data,
            state_of(rank, chunk.volume()),
            "restored state differs!"
        );
        assert_eq!(f.stats().requests, 1);
        data.len() as u64
    });
    println!(
        "checkpoint restored and verified: {} bytes in {:?}",
        bw.useful_bytes, bw.elapsed
    );

    // Show where the chunks physically live.
    for d in client.meta().get_distribution("/ckpt/step_000042")? {
        println!("  {} stores chunk(s) {:?}", d.server, d.bricklist);
    }
    Ok(())
}
