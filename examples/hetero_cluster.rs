//! Heterogeneous storage and the greedy striping algorithm (paper §4.1,
//! §8.2): when half the servers are ~3× slower, round-robin load-balances
//! brick *counts* but unbalances *time*; the greedy algorithm gives fast
//! servers proportionally more bricks and wins.
//!
//! Run with: `cargo run --release --example hetero_cluster`

use std::time::Instant;

use dpfs::cluster::Testbed;
use dpfs::core::{Hint, Placement};
use dpfs::server::StorageClass;

const FILE_BYTES: u64 = 1 << 20; // 1 MiB
const BRICK: u64 = 4096;

/// Aggregate bandwidth in MB/s plus per-server brick counts for one run.
type RunOutcome = (f64, Vec<(String, usize)>);

fn run(placement: Placement) -> Result<RunOutcome, Box<dyn std::error::Error>> {
    // 4 servers: two class-1 (fast LAN) and two class-3 (metro ATM, ~3x
    // slower per brick) — the paper's §8.2 mix.
    let testbed = Testbed::mixed(4, &[StorageClass::Class1, StorageClass::Class3])?;
    let client = testbed.client(0, /*combine=*/ true);

    let hint = Hint::linear(BRICK, FILE_BYTES).with_placement(placement);
    let mut f = client.create("/data", &hint)?;

    let loads: Vec<(String, usize)> = f
        .servers()
        .iter()
        .cloned()
        .zip(f.brick_map().loads())
        .collect();

    let data = vec![0xC3u8; FILE_BYTES as usize];
    let start = Instant::now();
    f.write_bytes(0, &data)?;
    let back = f.read_bytes(0, FILE_BYTES)?;
    assert_eq!(back, data);
    let secs = start.elapsed().as_secs_f64();
    let mbps = 2.0 * FILE_BYTES as f64 / 1e6 / secs; // write + read
    Ok((mbps, loads))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("storage: ion00/ion02 = class1 (fast), ion01/ion03 = class3 (~3x slower)\n");

    let (rr_mbps, rr_loads) = run(Placement::RoundRobin)?;
    println!("round-robin: {rr_mbps:.2} MB/s");
    for (name, load) in &rr_loads {
        println!("  {name}: {load} bricks");
    }

    let (g_mbps, g_loads) = run(Placement::Greedy)?;
    println!("\ngreedy:      {g_mbps:.2} MB/s");
    for (name, load) in &g_loads {
        println!("  {name}: {load} bricks");
    }

    println!(
        "\ngreedy assigns fast servers ~3x the bricks and is {:.2}x faster overall",
        g_mbps / rr_mbps
    );
    Ok(())
}
