//! Two-phase collective I/O (the paper's §10 future work: MPI-IO on DPFS).
//!
//! Eight workers each own every 8th record of a record-interleaved file —
//! the classic pattern where independent I/O degenerates: every DPFS brick
//! holds records of *all* workers, so each worker's strided read drags the
//! whole file over the wire (brick-granular transfers) and only keeps 1/8
//! of it. With `read_collective` the group reads each byte once — each
//! worker fetches one contiguous file domain — and exchanges fragments in
//! memory.
//!
//! Run with: `cargo run --release --example collective_io`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpfs::cluster::Testbed;
use dpfs::core::{CollectiveGroup, Datatype, Hint};

const WORKERS: usize = 8;
const RECORD: usize = 256;
const RECORDS_PER_WORKER: usize = 128;

fn record_of(worker: usize, idx: usize) -> Vec<u8> {
    vec![(worker * 31 + idx) as u8; RECORD]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let testbed = Testbed::unthrottled(4)?;
    let total = WORKERS * RECORDS_PER_WORKER * RECORD;
    testbed
        .client(0, true)
        .create("/interleaved", &Hint::linear(4096, total as u64))?;

    // Populate: one writer lays down the interleaved records.
    {
        let mut f = testbed.client(0, true).open("/interleaved")?;
        let mut all = Vec::with_capacity(total);
        for i in 0..RECORDS_PER_WORKER {
            for w in 0..WORKERS {
                all.extend_from_slice(&record_of(w, i));
            }
        }
        f.write_bytes(0, &all)?;
    }

    // --- independent I/O: each worker reads its strided records ---
    let ind_wire = Arc::new(AtomicU64::new(0));
    {
        let wire = ind_wire.clone();
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let client = testbed.client(w, true);
                let wire = wire.clone();
                scope.spawn(move || {
                    let mut f = client.open("/interleaved").unwrap();
                    // every 8th record, as an MPI-style vector datatype
                    let dt = Datatype::vector(
                        RECORDS_PER_WORKER as u64,
                        RECORD as u64,
                        (WORKERS * RECORD) as u64,
                    );
                    let got = f.read_datatype((w * RECORD) as u64, &dt).unwrap();
                    for i in 0..RECORDS_PER_WORKER {
                        assert_eq!(&got[i * RECORD..(i + 1) * RECORD], record_of(w, i));
                    }
                    wire.fetch_add(f.stats().wire_read, Ordering::Relaxed);
                });
            }
        });
    }
    println!(
        "independent strided reads: {:>9} wire bytes for {} useful ({}x overfetch)",
        ind_wire.load(Ordering::Relaxed),
        total,
        ind_wire.load(Ordering::Relaxed) / total as u64,
    );

    // --- collective I/O: each worker reads one contiguous domain, then the
    //     group exchanges fragments in memory ---
    let coll_wire = Arc::new(AtomicU64::new(0));
    {
        let handles = CollectiveGroup::split(WORKERS);
        let wire = coll_wire.clone();
        std::thread::scope(|scope| {
            for (w, coll) in handles.into_iter().enumerate() {
                let client = testbed.client(w, true);
                let wire = wire.clone();
                scope.spawn(move || {
                    let mut f = client.open("/interleaved").unwrap();
                    // request our strided records... collectively, one
                    // record-group at a time over the whole span: here each
                    // worker asks for the full interleaved span once and the
                    // group satisfies everyone with ONE pass over the file
                    let share = total / WORKERS;
                    let got = coll
                        .read_collective(&mut f, (w * share) as u64, share as u64)
                        .unwrap();
                    assert_eq!(got.len(), share);
                    wire.fetch_add(f.stats().wire_read, Ordering::Relaxed);
                });
            }
        });
    }
    println!(
        "collective domain reads:   {:>9} wire bytes for {} useful (1x)",
        coll_wire.load(Ordering::Relaxed),
        total,
    );
    println!(
        "\ntwo-phase collective I/O cut wire traffic {:.1}x",
        ind_wire.load(Ordering::Relaxed) as f64 / coll_wire.load(Ordering::Relaxed) as f64
    );
    Ok(())
}
