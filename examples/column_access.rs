//! The paper's core argument (§3.2), live: columnar `(*, BLOCK)` access on
//! a 2-D array is catastrophic under linear striping and cheap under
//! multidimensional striping.
//!
//! Reproduces the 8×8/Figure-5-and-6 reasoning at a realistic scale: a
//! 1024×1024 byte array striped over 4 servers, reading the first 128
//! columns, comparing request counts and wire traffic for the two levels.
//!
//! Run with: `cargo run --example column_access`

use dpfs::cluster::Testbed;
use dpfs::core::{ClientOptions, Datatype, Dpfs, Granularity, Hint, Region, Shape};

const N: u64 = 1024;
const COLS: u64 = 128;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let testbed = Testbed::unthrottled(4)?;
    let shape = Shape::new(vec![N, N])?;

    // Fill both files with the same array.
    let data: Vec<u8> = (0..N * N).map(|i| (i % 251) as u8).collect();

    // linear level: brick = one row (N bytes)
    let client = testbed.client(0, /*combine=*/ false);
    let mut lin = client.create("/lin", &Hint::linear(N, N * N))?;
    lin.write_bytes(0, &data)?;

    // multidim level: 64x64 bricks
    let mut md = client.create(
        "/md",
        &Hint::multidim(shape.clone(), Shape::new(vec![64, 64])?, 1),
    )?;
    md.write_region(&shape.full_region(), &data)?;

    // Expected answer: first COLS columns of the row-major array.
    let region = Region::new(vec![0, 0], vec![N, COLS])?;
    let mut expected = Vec::with_capacity((N * COLS) as usize);
    for row in 0..N {
        let start = (row * N) as usize;
        expected.extend_from_slice(&data[start..start + COLS as usize]);
    }

    // --- linear file, via a subarray datatype (one run per row) ---
    let mut lin = client.open("/lin")?;
    let dt = Datatype::subarray(shape.clone(), region.clone(), 1)?;
    let got = lin.read_datatype(0, &dt)?;
    assert_eq!(got, expected);
    let ls = lin.stats();
    println!(
        "linear   : {:>6} requests, {:>9} wire bytes, {:>7} useful bytes ({:.1}% efficient)",
        ls.requests,
        ls.wire_read,
        ls.useful_read,
        100.0 * ls.useful_read as f64 / ls.wire_read as f64
    );

    // --- multidim file, same region ---
    let mut md = client.open("/md")?;
    let got = md.read_region(&region)?;
    assert_eq!(got, expected);
    let ms = md.stats();
    println!(
        "multidim : {:>6} requests, {:>9} wire bytes, {:>7} useful bytes ({:.1}% efficient)",
        ms.requests,
        ms.wire_read,
        ms.useful_read,
        100.0 * ms.useful_read as f64 / ms.wire_read as f64
    );

    println!(
        "\nmultidim needs {}x fewer requests and {}x less wire traffic",
        ls.requests / ms.requests,
        ls.wire_read / ms.wire_read
    );

    // With request combination the request count drops to one per server.
    let combined = testbed.client(1, /*combine=*/ true);
    let mut md2 = combined.open("/md")?;
    let _ = md2.read_region(&region)?;
    println!(
        "multidim + request combination: {} requests (one per touched server)",
        md2.stats().requests
    );

    // Even on the hostile linear layout, the *request* side of the wire
    // collapses once the column access ships as a pattern descriptor:
    // N strided runs per server become one Vector segment, and the
    // server answers with one coalesced payload.
    let req_bytes = |c: &Dpfs| -> u64 {
        (0..4)
            .filter_map(|i| c.pool().transport_stats(&format!("ion{i:02}")))
            .map(|t| t.req_bytes)
            .sum()
    };
    println!("\nlinear file, exact-granularity column read, request wire bytes:");
    let mut shapes = Vec::new();
    for (label, list_io) in [("enumerated ranges", false), ("list-io descriptor", true)] {
        let c = testbed.client_opts(ClientOptions {
            list_io,
            granularity: Granularity::Exact,
            ..ClientOptions::default()
        });
        let mut f = c.open("/lin")?;
        let before = req_bytes(&c);
        let got = f.read_datatype(0, &dt)?;
        assert_eq!(got, expected);
        let bytes = req_bytes(&c) - before;
        println!("  {label:<18} {bytes:>9} request bytes");
        shapes.push(bytes);
    }
    println!(
        "list I/O shrinks the request stream {}x for this access",
        shapes[0] / shapes[1]
    );
    Ok(())
}
