//! Out-of-core matrix transpose — the data-intensive workload class the
//! paper's introduction motivates: the matrix does not fit in (per-worker)
//! memory, so workers stream tiles through DPFS.
//!
//! A 1024×1024 f32 matrix lives in a multidim-striped file (64×64 bricks).
//! Four workers transpose it tile by tile into a second file: each reads
//! tile (i, j), transposes in memory, and writes tile (j, i). Brick-aligned
//! tiles mean every tile access is a handful of whole-brick requests.
//!
//! Run with: `cargo run --release --example out_of_core`

use dpfs::cluster::{run_clients, Testbed};
use dpfs::core::{Granularity, Hint, Region, Shape};

const N: u64 = 1024;
const TILE: u64 = 128;
const ELEM: u64 = 4; // f32

fn value_at(row: u64, col: u64) -> f32 {
    (row * N + col) as f32
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let testbed = Testbed::unthrottled(4)?;
    let shape = Shape::new(vec![N, N])?;
    let brick = Shape::new(vec![64, 64])?;

    // Create source and destination matrices.
    let client = testbed.client(0, true);
    client.create("/A", &Hint::multidim(shape.clone(), brick.clone(), ELEM))?;
    client.create("/At", &Hint::multidim(shape.clone(), brick, ELEM))?;

    // Fill A in parallel row bands.
    let nworkers = 4usize;
    let rows_per = N / nworkers as u64;
    run_clients(&testbed, nworkers, true, Granularity::Brick, |rank, c| {
        let mut f = c.open("/A").unwrap();
        let r0 = rank as u64 * rows_per;
        let mut band = Vec::with_capacity((rows_per * N * ELEM) as usize);
        for row in r0..r0 + rows_per {
            for col in 0..N {
                band.extend_from_slice(&value_at(row, col).to_le_bytes());
            }
        }
        f.write_region(&Region::new(vec![r0, 0], vec![rows_per, N]).unwrap(), &band)
            .unwrap();
        band.len() as u64
    });
    println!(
        "filled /A: {}x{} f32 ({} MB)",
        N,
        N,
        N * N * ELEM / (1 << 20)
    );

    // Transpose tile by tile; worker k owns tile-rows k, k+4, k+8, ...
    let tiles = N / TILE;
    let bw = run_clients(&testbed, nworkers, true, Granularity::Brick, |rank, c| {
        let mut src = c.open("/A").unwrap();
        let mut dst = c.open("/At").unwrap();
        let mut moved = 0u64;
        let mut ti = rank as u64;
        while ti < tiles {
            for tj in 0..tiles {
                let in_region = Region::new(vec![ti * TILE, tj * TILE], vec![TILE, TILE]).unwrap();
                let tile = src.read_region(&in_region).unwrap();
                // transpose the tile in memory
                let mut out = vec![0u8; tile.len()];
                for r in 0..TILE as usize {
                    for col in 0..TILE as usize {
                        let s = (r * TILE as usize + col) * ELEM as usize;
                        let d = (col * TILE as usize + r) * ELEM as usize;
                        out[d..d + ELEM as usize].copy_from_slice(&tile[s..s + ELEM as usize]);
                    }
                }
                let out_region = Region::new(vec![tj * TILE, ti * TILE], vec![TILE, TILE]).unwrap();
                dst.write_region(&out_region, &out).unwrap();
                moved += 2 * tile.len() as u64;
            }
            ti += nworkers as u64;
        }
        moved
    });
    println!(
        "transposed in {:?} ({:.1} MB/s through DPFS)",
        bw.elapsed,
        bw.mbytes_per_sec()
    );

    // Spot-verify At[i][j] == A[j][i] on random-ish samples.
    let mut at = client.open("/At")?;
    for (row, col) in [(0u64, 0u64), (1, 999), (511, 256), (1023, 1), (777, 777)] {
        let got = at.read_region(&Region::new(vec![row, col], vec![1, 1])?)?;
        let val = f32::from_le_bytes(got.try_into().unwrap());
        assert_eq!(val, value_at(col, row), "At[{row}][{col}]");
    }
    println!("verified: At[i][j] == A[j][i]");

    // Show per-server byte counts — the transpose spread over all servers.
    for (name, stats) in testbed.server_stats() {
        println!(
            "  {name}: {} MB read, {} MB written",
            stats.bytes_read / (1 << 20),
            stats.bytes_written / (1 << 20)
        );
    }
    Ok(())
}
