//! Quickstart: bring up a 4-server DPFS, create a striped file, write it in
//! parallel-friendly pieces, read it back, and inspect the metadata.
//!
//! Run with: `cargo run --example quickstart`

use dpfs::cluster::Testbed;
use dpfs::core::Hint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Start four I/O servers on localhost (unthrottled: no simulated
    //    device delays) and register them in the metadata database.
    let testbed = Testbed::unthrottled(4)?;
    let client = testbed.client(0, /*combine=*/ true);
    println!("started {} I/O servers", testbed.num_servers());

    // 2. Create a linear-level file: 4 KiB bricks, 1 MiB declared size.
    //    Bricks are assigned to servers round-robin at creation, exactly as
    //    in Figure 3 of the paper.
    client.mkdir("/home")?;
    let hint = Hint::linear(4096, 1 << 20).with_owner("quickstart");
    let mut file = client.create("/home/hello.dat", &hint)?;
    println!(
        "created /home/hello.dat with {} bricks",
        file.brick_map().num_bricks()
    );

    // 3. Write a pattern and read it back.
    let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
    file.write_bytes(0, &payload)?;
    let back = file.read_bytes(0, payload.len() as u64)?;
    assert_eq!(back, payload);
    println!("wrote and verified {} bytes", payload.len());

    // 4. Inspect metadata: the catalog answers with the paper's four tables.
    let attr = client.stat("/home/hello.dat")?;
    println!(
        "stat: owner={} size={} level={} brick_bytes={}",
        attr.owner, attr.size, attr.filelevel, attr.stripe_size
    );
    for d in client.meta().get_distribution("/home/hello.dat")? {
        println!("  {} holds {} bricks", d.server, d.bricklist.len());
    }

    // 5. Client-side I/O statistics: with request combination on, the whole
    //    read needed only one request per server.
    let stats = file.stats();
    println!(
        "client stats: {} requests, {} bytes over the wire",
        stats.requests,
        stats.wire_read + stats.wire_written
    );
    file.close()?;
    Ok(())
}
